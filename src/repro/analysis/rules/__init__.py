"""Built-in rule families; importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import (
    budget,
    contracts,
    determinism,
    drift,
    experiments,
    flow,
    perf,
    race,
)

__all__ = [
    "budget",
    "contracts",
    "determinism",
    "drift",
    "experiments",
    "flow",
    "perf",
    "race",
]
