"""Custom static-analysis pass over the reproduction's source tree.

The pass machine-checks the invariants the paper's claims rest on, so
that they cannot drift silently:

* **determinism** (``DET*``) — the simulator must be bit-reproducible
  run to run, so global-RNG calls, wall-clock reads, unordered ``set``
  iteration, and float literal equality are banned in the core;
* **hardware budget** (``BUD*``) — the table geometry declared in
  :mod:`repro.core.config` must match the checked-in manifest derived
  from Section 4.4 / Table 2 of the paper;
* **prefetcher contract** (``CON*``) — every prefetcher subclasses the
  common interface with compatible signatures and is registered in the
  factory;
* **experiment hygiene** (``EXP*``) — every ``experiments/fig*.py``
  exposes the ``run()``/``render()`` entry points the runner and the
  CLI rely on;
* **fork safety** (``RACE*``) — module-level mutable state, RNG streams
  and OS handles must not cross the spawn boundary of the parallel
  sweep engine;
* **hot-path dataflow** (``FLW*``) — the per-access kernel loop stays
  allocation-free with hoisted bound methods, and degrade-to-rebuild
  paths always log;
* **inline parity** (``DRIFT*``) — every inlined fast-path copy is
  hash-pinned to its canonical method, so one-sided edits fail lint.

The pass is project-wide: :meth:`Project.semantic` exposes an import
graph, per-module symbol tables and an approximate call graph (built
once, shared by every rule).  Inline ``# repro: noqa[<RULE>]``
suppressions are honoured and audited for staleness; ``--format
sarif|github`` emits CI-consumable output.

Run it with ``python -m repro lint`` (or ``make lint``).  See
``docs/static_analysis.md`` for the rule catalogue and how to add a
rule.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, format_findings
from repro.analysis.graph import SemanticModel
from repro.analysis.registry import Rule, all_rules, register_rule
from repro.analysis.runner import analyze, load_manifest, main
from repro.analysis.sarif import format_github, format_sarif
from repro.analysis.visitor import NodeRule, Project, SourceFile, load_project

__all__ = [
    "Finding",
    "NodeRule",
    "Project",
    "Rule",
    "SemanticModel",
    "SourceFile",
    "all_rules",
    "analyze",
    "format_findings",
    "format_github",
    "format_sarif",
    "load_manifest",
    "load_project",
    "main",
    "register_rule",
]
