"""Compiler-injected semantic hints (the paper's LLVM pass, Section 6).

The paper modifies LLVM to tag pointer-producing memory operations with
three software attributes (Table 1): a unique enumeration of the accessed
object's type, the offset of the link field within the object, and the
syntactic form of the reference.  The hints travel to the memory unit as
immediates of an extended NOP preceding the memory instruction.

Here the workload generators play the role of the compiler: they attach a
:class:`SemanticHints` record to each access for which the paper's pass
would have emitted a hint NOP — accesses that produce new pointer values —
and leave other accesses unhinted, mirroring the paper's overhead rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class RefForm(IntEnum):
    """Syntactic form of a memory reference (Table 1, "Form of reference")."""

    NONE = 0
    DOT = 1  # struct member access:  obj.field
    ARROW = 2  # pointer member access: ptr->field
    DEREF = 3  # plain dereference:     *ptr
    INDEX = 4  # array indexing:        arr[i]


@dataclass(frozen=True)
class SemanticHints:
    """Software context attributes for one memory access.

    ``type_id`` enumerates object types uniquely within a program.
    ``link_offset`` is the byte offset of the pointer/index field inside
    the object being accessed (0 when not applicable).
    ``ref_form`` is the syntactic access form.
    """

    type_id: int = 0
    link_offset: int = 0
    ref_form: RefForm = RefForm.NONE

    def packed(self) -> int:
        """Pack into a 32-bit immediate as the paper's NOP encoding would."""
        return (
            (self.type_id & 0xFFFF)
            | ((self.link_offset & 0xFFF) << 16)
            | ((int(self.ref_form) & 0xF) << 28)
        )


#: Hint record attached to accesses the compiler would leave unannotated.
NO_HINTS = SemanticHints()


class TypeRegistry:
    """Per-program enumeration of object types, as the paper's pass assigns.

    Each compiled program numbers its types independently ("each type is
    assigned a unique value within the compiled program").
    """

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def type_id(self, name: str) -> int:
        """Return the stable id for ``name``, allocating on first use.

        Ids start at 1 so that 0 can mean "no type information".
        """
        if name not in self._ids:
            self._ids[name] = len(self._ids) + 1
        return self._ids[name]

    def __len__(self) -> int:
        return len(self._ids)

    def known_types(self) -> dict[str, int]:
        return dict(self._ids)
