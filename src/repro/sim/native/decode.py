"""Decode phase: access streams to contiguous numpy columns.

The native kernel consumes four per-access columns — byte address,
program counter, instruction gap and the flags byte — plus the derived
cache-line column.  Two sources feed it:

* a :class:`~repro.workloads.store.TraceReader`, whose record block
  reinterprets as a numpy struct array with **zero copies** from the
  mmap (:meth:`TraceReader.as_array`); the columns below are contiguous
  copies of single fields, one vectorized pass each;
* an in-memory access list (a built workload), converted column-at-a-time
  with ``numpy.fromiter`` — still one C-level pass per column, no
  per-record Python tuples.

Both paths return ``None`` (after logging) instead of raising when the
stream cannot be represented: addresses outside the modelled 48-bit
space, gaps beyond ``u32``, PCs beyond ``u64``.  Callers fall back to
the interpreted scalar path.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.memory.address import ADDRESS_MASK, lines_of_array, max_address

log = logging.getLogger(__name__)

_U32_MAX = (1 << 32) - 1

#: flags-byte bits the kernel consumes (store layout: bit0 = is_load,
#: bit1 = depends_on_prev, bit2 = has semantic hints)
FLAG_IS_LOAD = 1
FLAG_DEPENDS = 2
FLAG_HINTED = 4

#: branch tuples wider than the store's u64 bitmap cannot ride a column
MAX_BRANCHES = 64


@dataclass
class Columns:
    """The decoded per-access columns one native run consumes.

    The context columns are populated only when the context RL kernel is
    the consumer (``with_context=True``); every other family leaves them
    ``None`` and the adapter hands the kernel null pointers.
    """

    n: int
    addrs: object  # u64[n], C-contiguous
    pcs: object  # u64[n], C-contiguous
    lines: object  # u64[n], C-contiguous
    inst_gaps: object  # u32[n], C-contiguous
    flags: object  # u8[n], C-contiguous
    values: object = None  # i64[n]: loaded values (last_value feed)
    reg_values: object = None  # i64[n]
    branch_bits: object = None  # u64[n], oldest outcome at bit 0
    branch_counts: object = None  # u16[n]
    type_ids: object = None  # u32[n], zero where unhinted
    link_offsets: object = None  # u32[n], zero where unhinted
    ref_forms: object = None  # u8[n], zero where unhinted


def _check_addresses(addrs) -> bool:
    """True when every address fits the modelled 48-bit space.

    The kernel's delta arithmetic (stride/GHB/Markov) runs in signed
    64-bit integers; :data:`ADDRESS_MASK` keeps every difference exact.
    """
    top = max_address(addrs)
    if top > ADDRESS_MASK:
        log.warning(
            "native decode: address %#x exceeds the modelled %d-bit space; "
            "falling back to the interpreted path",
            top,
            ADDRESS_MASK.bit_length(),
        )
        return False
    return True


def columns_from_reader(
    reader, limit: int | None, line_bytes: int, *, with_context: bool = False
) -> Columns | None:
    """Columns for a store-backed trace (zero-copy struct-array source).

    Returns ``None`` (logged) when numpy is unavailable or the stream
    falls outside the kernel's value ranges.
    """
    from repro.workloads.store import TraceStoreError

    try:
        import numpy as np
    except ImportError as exc:
        log.warning("native decode: numpy unavailable (%s)", exc)
        return None
    try:
        records = reader.as_array(limit)
    except TraceStoreError as exc:
        log.warning("native decode: array view failed (%s)", exc)
        return None
    addrs = np.ascontiguousarray(records["addr"], dtype="=u8")
    if not _check_addresses(addrs):
        return None
    cols = Columns(
        n=len(addrs),
        addrs=addrs,
        pcs=np.ascontiguousarray(records["pc"], dtype="=u8"),
        lines=np.ascontiguousarray(lines_of_array(addrs, line_bytes), dtype="=u8"),
        inst_gaps=np.ascontiguousarray(records["inst_gap"], dtype="=u4"),
        flags=np.ascontiguousarray(records["flags"], dtype="=u1"),
    )
    if with_context:
        # unhinted records decode to NO_HINTS (all zero fields) on the
        # interpreted path; mask the hint columns the same way
        hinted = (cols.flags & FLAG_HINTED) != 0
        cols.values = np.ascontiguousarray(records["value"], dtype="=i8")
        cols.reg_values = np.ascontiguousarray(records["reg_value"], dtype="=i8")
        cols.branch_bits = np.ascontiguousarray(records["branch_bits"], dtype="=u8")
        cols.branch_counts = np.ascontiguousarray(
            records["branch_count"], dtype="=u2"
        )
        cols.type_ids = np.where(
            hinted, records["type_id"], 0
        ).astype("=u4", copy=False)
        cols.link_offsets = np.where(
            hinted, records["link_offset"], 0
        ).astype("=u4", copy=False)
        cols.ref_forms = np.where(
            hinted, records["ref_form"], 0
        ).astype("=u1", copy=False)
        cols.type_ids = np.ascontiguousarray(cols.type_ids)
        cols.link_offsets = np.ascontiguousarray(cols.link_offsets)
        cols.ref_forms = np.ascontiguousarray(cols.ref_forms)
    return cols


def _branch_words(accesses):
    """(bits, count) per access, oldest outcome at bit 0, like the store."""
    for a in accesses:
        branches = a.branches
        if len(branches) > MAX_BRANCHES:
            raise ValueError(f"{len(branches)} branch outcomes exceed the u64 bitmap")
        bits = 0
        for i, taken in enumerate(branches):
            if taken:
                bits |= 1 << i
        yield bits, len(branches)


def columns_from_accesses(
    accesses, line_bytes: int, *, with_context: bool = False
) -> Columns | None:
    """Columns for an in-memory access list (built workloads).

    The base columns populate the ``is_load`` and ``depends_on_prev``
    flag bits; the context columns (values, branches, hints) are built
    only when requested.  Returns ``None`` (logged) when numpy is
    unavailable or a field falls outside the column dtypes.
    """
    try:
        import numpy as np
    except ImportError as exc:
        log.warning("native decode: numpy unavailable (%s)", exc)
        return None
    n = len(accesses)
    try:
        addrs = np.fromiter((a.addr for a in accesses), dtype="=u8", count=n)
        pcs = np.fromiter((a.pc for a in accesses), dtype="=u8", count=n)
        inst_gaps = np.fromiter((a.inst_gap for a in accesses), dtype="=u4", count=n)
        flags = np.fromiter(
            (
                (FLAG_IS_LOAD if a.is_load else 0)
                | (FLAG_DEPENDS if a.depends_on_prev else 0)
                for a in accesses
            ),
            dtype="=u1",
            count=n,
        )
    except (OverflowError, ValueError) as exc:
        log.warning(
            "native decode: access stream outside the kernel's value ranges "
            "(%s); falling back to the interpreted path",
            exc,
        )
        return None
    if not _check_addresses(addrs):
        return None
    if n and int(inst_gaps.max()) > _U32_MAX:  # unreachable with =u4; belt
        log.warning("native decode: instruction gap exceeds u32")
        return None
    cols = Columns(
        n=n,
        addrs=addrs,
        pcs=pcs,
        lines=np.ascontiguousarray(lines_of_array(addrs, line_bytes), dtype="=u8"),
        inst_gaps=inst_gaps,
        flags=flags,
    )
    if with_context:
        try:
            branch_pairs = list(_branch_words(accesses))
            cols.values = np.fromiter((a.value for a in accesses), dtype="=i8", count=n)
            cols.reg_values = np.fromiter(
                (a.reg_value for a in accesses), dtype="=i8", count=n
            )
            cols.branch_bits = np.fromiter(
                (bits for bits, _ in branch_pairs), dtype="=u8", count=n
            )
            cols.branch_counts = np.fromiter(
                (count for _, count in branch_pairs), dtype="=u2", count=n
            )
            cols.type_ids = np.fromiter(
                (a.hints.type_id for a in accesses), dtype="=u4", count=n
            )
            cols.link_offsets = np.fromiter(
                (a.hints.link_offset for a in accesses), dtype="=u4", count=n
            )
            cols.ref_forms = np.fromiter(
                (int(a.hints.ref_form) for a in accesses), dtype="=u1", count=n
            )
        except (OverflowError, ValueError) as exc:
            log.warning(
                "native decode: context columns outside the kernel's value "
                "ranges (%s); falling back to the interpreted path",
                exc,
            )
            return None
    return cols
