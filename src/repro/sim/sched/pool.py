"""Persistent warm worker pool for batched sweep dispatch.

The PR 5 engine paid pool startup (spawn + package import), trace
decode and native-kernel warm-up once per ``parallel_compare`` call;
a config sweep that makes hundreds of such calls pays those costs
hundreds of times.  This pool keeps spawn-started workers alive for
the whole process: each worker's trace memo, decoded column arrays and
compiled kernel handle stay resident across every batch — and every
sweep — it serves, so the per-cell cost converges on the simulation
itself.

Batch protocol (PERF004 pins the layout):

* a batch is ``(batch_id, BatchShared, cells)``: one shared header per
  batch carrying the workload, trace supply, limit, configs and the
  context-config *table*, plus per-cell tuples of exactly
  :data:`CELL_FIELDS` — ``(index, prefetcher, context_id)``.  Configs
  cross the boundary once per batch, never once per cell;
* results return as ``("done", batch_id, [(index, encoded payload,
  native_info), ...], store_degrades)`` — every result crosses through
  the versioned codec exactly as the cache and the legacy executor path
  do, and worker-side store-degrade counts ride back *by value* (each
  process counts its own events; nothing is shared across spawn);
* a worker exception answers ``("error", batch_id, message)`` and the
  worker survives to take the next batch.

Workers are daemonic spawn processes: they never inherit parent RNG or
cache state, and they die with the parent.  A worker killed from the
outside is detected while draining (the queue read times out and the
pool checks liveness) and surfaces as :class:`WorkerPoolError` — the
result DB keeps every batch committed before the kill, so the sweep
resumes instead of recomputing.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import get_context
from queue import Empty
from typing import Any, Sequence

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.codec import encode_result
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryAccess

__all__ = [
    "BatchShared",
    "CELL_FIELDS",
    "WorkerPool",
    "WorkerPoolError",
    "shared_pool",
    "shutdown_pools",
]

#: the per-cell tuple layout, pinned by analysis rule PERF004: growing
#: it (e.g. sneaking a config object back into the per-cell payload)
#: is a reviewed decision that requires editing the rule's allowlist
CELL_FIELDS = ("index", "prefetcher", "context_id")

#: seconds between liveness checks while waiting on results; purely a
#: polling interval for detecting killed workers, never a deadline
_DRAIN_POLL_S = 2.0


class WorkerPoolError(Exception):
    """A worker died or answered with a failure."""


@dataclass(frozen=True)
class BatchShared:
    """The once-per-batch header every cell of the batch shares."""

    workload: str
    limit: int | None
    native: bool
    hierarchy_config: HierarchyConfig | None = None
    core_config: CoreConfig | None = None
    #: context-config table; per-cell tuples index into it
    context_table: tuple[ContextPrefetcherConfig | None, ...] = (None,)
    #: compiled store file + content fingerprint (preferred supply)
    store_path: str | None = None
    store_fingerprint: str = ""
    #: ad-hoc trace shipped by value (workloads workers cannot rebuild)
    trace: tuple[MemoryAccess, ...] | None = None
    #: hand whole shards to the kernel's batch driver (one GIL-released
    #: C call per batch) when native; False pins the per-cell dispatch
    #: path (the PR 9 baseline, kept for benchmarks and bisection)
    kernel_batch: bool = True
    #: OpenMP team size for the in-kernel batch (0 = the OpenMP default;
    #: ignored by serial builds, which are bit-identical anyway)
    kernel_threads: int = 0


def _make_cell_prefetcher(shared: BatchShared, prefetcher: str, context_id: int):
    config = shared.context_table[context_id]
    if prefetcher == "context" and config is not None:
        return ContextPrefetcher(config)
    return PREFETCHER_FACTORIES[prefetcher]()


def run_batch(
    shared: BatchShared, cells: Sequence[tuple[int, str, int]]
) -> tuple[list[tuple[int, dict[str, Any], tuple[bool, str | None]]], int]:
    """Execute one batch in this process; ``(results, store degrades)``.

    The trace resolves through the worker memo exactly as the legacy
    batch path does (decode once, reuse across batches).  When the batch
    is native and the kernel's batch driver is enabled, the whole cell
    list crosses into C in one GIL-released ``rp_run_batch`` call —
    per-cell results bit-identical to the per-cell dispatch below, which
    both serves as the fallback for cells the kernel cannot represent
    (each degrades alone, with its own reason) and remains the whole
    path when ``kernel_batch`` is off.
    """
    from repro.sim.parallel import _drain_store_degrades, _resolve_worker_trace

    trace = _resolve_worker_trace(
        shared.workload,
        shared.store_path,
        shared.store_fingerprint,
        shared.limit,
        shared.native,
        shared.trace,
    )
    limit = shared.limit
    prefetchers = [
        _make_cell_prefetcher(shared, prefetcher, context_id)
        for _index, prefetcher, context_id in cells
    ]
    batch_results = None
    if shared.native and shared.kernel_batch:
        from repro.sim.native.adapter import run_native_batch

        batch_results, _reasons, trace, limit = run_native_batch(
            prefetchers,
            trace,
            workload_name=shared.workload,
            limit=limit,
            hierarchy_config=shared.hierarchy_config,
            core_config=shared.core_config,
            threads=shared.kernel_threads,
        )
    out = []
    for pos, (index, _prefetcher, _context_id) in enumerate(cells):
        if batch_results is not None and batch_results[pos] is not None:
            out.append((index, encode_result(batch_results[pos]), (True, None)))
            continue
        sim = Simulator(
            prefetchers[pos],
            hierarchy_config=shared.hierarchy_config,
            core_config=shared.core_config,
            native=shared.native,
        )
        result = sim.run(trace, workload_name=shared.workload, limit=limit)
        out.append(
            (
                index,
                encode_result(result),
                (sim.last_run_native, sim.last_native_fallback),
            )
        )
    return out, _drain_store_degrades()


def _worker_main(task_q, result_q) -> None:  # pragma: no cover - child process
    """Worker loop: drain batches until the ``None`` sentinel arrives.

    Exceptions are answered, not fatal — the worker (and everything
    warm in it) survives a poisoned batch.
    """
    while True:
        message = task_q.get()
        if message is None:
            return
        batch_id, shared, cells = message
        try:
            results, degrades = run_batch(shared, cells)
        except BaseException as exc:  # noqa: BLE001 - answered to the parent
            result_q.put(("error", batch_id, f"{type(exc).__name__}: {exc}"))
        else:
            result_q.put(("done", batch_id, results, degrades))


class WorkerPool:
    """A fixed set of persistent spawn workers over a pair of queues."""

    def __init__(self, jobs: int):
        self.jobs = max(1, jobs)
        ctx = get_context("spawn")
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                daemon=True,
                name=f"repro-sweep-{i}",
            )
            for i in range(self.jobs)
        ]
        for proc in self._procs:
            proc.start()
        self._closed = False

    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._procs)

    def worker_pids(self) -> list[int]:
        """The workers' PIDs (tests assert residency across dispatches)."""
        return [p.pid or 0 for p in self._procs]

    def submit(self, batch_id: int, shared: BatchShared, cells) -> None:
        """Enqueue one batch; returns immediately."""
        self._task_q.put((batch_id, shared, cells))

    def drain_one(self) -> tuple[int, list, int]:
        """Block for one finished batch: ``(batch_id, results, degrades)``.

        Raises :class:`WorkerPoolError` on a worker-reported failure or
        when a worker process died with work outstanding.
        """
        while True:
            try:
                message = self._result_q.get(timeout=_DRAIN_POLL_S)
            except Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    raise WorkerPoolError(
                        f"worker(s) {', '.join(sorted(dead))} died with work "
                        "outstanding; completed batches are already committed "
                        "— resubmit the sweep to resume"
                    ) from None
                continue
            if message[0] == "error":
                raise WorkerPoolError(f"batch {message[1]} failed: {message[2]}")
            return message[1], message[2], message[3]

    def close(self) -> None:
        """Shut the workers down; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for queue in (self._task_q, self._result_q):
            queue.close()
            queue.cancel_join_thread()


# -- process-wide shared pool -------------------------------------------
#
# One pool per requested size, kept for the life of the process: this is
# what turns "a sweep spawns workers" into "sweeps share warm workers".
# Parent-side only — workers never see this registry (spawn re-imports
# the module with an empty dict), and nothing here crosses the boundary.

_POOLS: dict[int, WorkerPool] = {}


def shared_pool(jobs: int) -> WorkerPool:
    """The process-wide persistent pool with ``jobs`` workers.

    Reused across every sweep/serve call in this process; a pool whose
    workers died is replaced transparently.
    """
    jobs = max(1, jobs)
    pool = _POOLS.get(jobs)
    if pool is not None and pool.alive():
        return pool
    if pool is not None:
        pool.close()
    pool = WorkerPool(jobs)
    _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Close every shared pool (atexit, and tests that count spawns)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


# registered at import: the pools hold daemonic children, so this is
# belt-and-braces cleanup for prompt queue teardown, not correctness
atexit.register(shutdown_pools)
