"""Sweep-service suite: the client API and the ``repro serve`` CLI.

The service is a thin composition layer, so the tests exercise the
seams: a submit→status→query round-trip through :class:`SweepService`,
the same round-trip through the CLI (the smoke job in CI runs this
path for real), and the axis-expansion helper the CLI builds plans
with.
"""

import json

import pytest

from repro.cli import main
from repro.serve.service import SweepService, plan_from_axes
from repro.sim.codec import encode_result
from repro.sim.runner import compare
from repro.workloads.store import TraceStore

WORKLOADS = ["list", "array"]
PREFETCHERS = ["none", "context"]
LIMIT = 1200


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("traces"))
    for name in WORKLOADS:
        store.compile(name)
    return store


class TestPlanFromAxes:
    def test_default_single_config_slice(self):
        plan = plan_from_axes(
            workloads=WORKLOADS, prefetchers=PREFETCHERS, limit=7
        )
        assert plan.context_configs == (None,)
        assert plan.n_cells == 4
        assert plan.limit == 7

    def test_cst_axis_scales_reducer(self):
        plan = plan_from_axes(
            workloads=["list"], prefetchers=["context"], cst_sizes=[128, 512]
        )
        assert [c.cst_entries for c in plan.context_configs] == [128, 512]
        assert [c.reducer_entries for c in plan.context_configs] == [
            1024, 4096,
        ]
        assert plan.n_cells == 2


class TestSweepService:
    def test_submit_status_query_round_trip(self, tmp_path, store):
        plan = plan_from_axes(
            workloads=WORKLOADS, prefetchers=PREFETCHERS, limit=LIMIT
        )
        with SweepService(
            db=tmp_path / "sweep.db", store=store, jobs=2
        ) as service:
            stats = service.submit(plan)
            assert (stats.executed, stats.resumed) == (4, 0)

            status = service.status()
            assert [(s.sweep, s.done, s.total) for s in status] == [
                (stats.sweep, 4, 4)
            ]

            cells = service.query(workload="list")
            assert [(c.workload, c.prefetcher) for c in cells] == [
                ("list", "none"), ("list", "context"),
            ]
            serial = compare(
                WORKLOADS, PREFETCHERS, limit=LIMIT,
                jobs=1, cache=False, store=False,
            )
            for cell in service.query():
                want = serial.get(cell.workload, cell.prefetcher)
                assert encode_result(cell.result) == encode_result(want)

            # resubmitting is a no-op on the grid
            assert service.submit(plan).executed == 0


class TestServeCLI:
    def test_submit_status_query(self, tmp_path, store, capsys):
        db = str(tmp_path / "sweep.db")
        base = [
            "serve", "submit",
            "--workloads", ",".join(WORKLOADS),
            "--prefetchers", ",".join(PREFETCHERS),
            "--limit", str(LIMIT),
            "--jobs", "2",
            "--db", db,
            "--store-dir", str(store.root),
            "--no-cache",
        ]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "4 cells, 4 executed, 0 resumed" in out

        # a second submit resumes everything
        assert main(base) == 0
        assert "0 executed, 4 resumed" in capsys.readouterr().out

        assert main(["serve", "status", "--db", db]) == 0
        assert "4     4" in capsys.readouterr().out

        assert main(
            ["serve", "query", "--db", db, "--workload", "array"]
        ) == 0
        out = capsys.readouterr().out
        assert "array/none" in out and "2 cell(s)" in out

        assert main(
            [
                "serve", "query", "--db", db,
                "--prefetcher", "context", "--format", "json",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["workload"] for r in rows] == WORKLOADS
        assert all(r["result"]["prefetcher"] == "context" for r in rows)
