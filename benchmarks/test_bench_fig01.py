"""Figure 1 bench: regenerate the insertion-sort locality series."""

from conftest import run_once

from repro.experiments import fig01_semantic_locality as fig01


def test_fig01_semantic_locality(benchmark):
    result = run_once(benchmark, fig01.run, 100)
    # paper shape: logical order is perfectly linear, physical order is not
    assert result.logical_step_unit_fraction > 0.99
    assert result.physical_step_adjacent_fraction < 0.2
    assert result.physical_span > 1000
    print()
    print(fig01.render(result))
