"""Memory-hierarchy substrate: caches, MSHRs, DRAM timing, statistics.

This package stands in for the gem5 memory system used by the paper.  It
provides a functional + timing model of a two-level cache hierarchy with
miss-status holding registers (MSHRs), in-flight prefetch tracking, and
the per-access benefit classification used by Figure 9 of the paper.
"""

from repro.memory.address import (
    BLOCK_BYTES,
    LINE_BYTES,
    align_down,
    block_of,
    block_to_addr,
    line_of,
    line_to_addr,
)
from repro.memory.cache import Cache, CacheConfig, CacheLine
from repro.memory.hierarchy import AccessResult, Hierarchy, HierarchyConfig
from repro.memory.mshr import MSHRFile
from repro.memory.stats import AccessClass, AccessClassifier, CacheStats

__all__ = [
    "BLOCK_BYTES",
    "LINE_BYTES",
    "AccessClass",
    "AccessClassifier",
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheLine",
    "CacheStats",
    "Hierarchy",
    "HierarchyConfig",
    "MSHRFile",
    "align_down",
    "block_of",
    "block_to_addr",
    "line_of",
    "line_to_addr",
]
