"""Ablation bench: design-choice variants of the context prefetcher."""

from conftest import run_once

from repro.experiments import ablations

WORKLOADS = ("list", "graph500-list", "array")


def test_ablations(benchmark):
    result = run_once(benchmark, ablations.run, "small", WORKLOADS)

    means = result.means
    expected = set(ablations.variant_configs()) | set(ablations.hierarchy_variants())
    assert set(means) == expected
    # every variant still prefetches usefully on this friendly subset
    assert all(mean > 1.0 for mean in means.values())
    # the full design should be at worst marginally behind any single
    # ablation (no mechanism is actively harmful in aggregate)
    best = max(means.values())
    assert means["full"] > 0.85 * best
    print()
    print(ablations.render(result))
