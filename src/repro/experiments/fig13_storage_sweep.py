"""Figure 13: overall speedup as a function of CST storage size.

The paper scales the CST entry count (reducer at 8×) and finds that more
storage is *not* monotonically better: the "All benchmarks" mean peaks
around 64–128kB and the Top-10 mean around 256kB, then both flatten or
dip — because a larger action space slows the bandit's convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ContextPrefetcherConfig
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES, REPRESENTATIVE_WORKLOADS
from repro.sim.runner import run_workload, storage_sweep
from repro.workloads.suites import get_workload

#: CST entry counts swept (paper's x axis is total storage)
DEFAULT_SIZES = (256, 512, 1024, 2048, 4096, 8192)


@dataclass
class Figure13Result:
    #: CST entries -> storage KiB of the whole prefetcher
    storage_kib: dict[int, float]
    #: CST entries -> geometric-ish mean speedup over all workloads
    mean_all: dict[int, float]
    #: CST entries -> mean speedup over the top-10 benefiting workloads
    mean_top10: dict[int, float]

    def best_size_all(self) -> int:
        return max(self.mean_all, key=self.mean_all.get)

    def best_size_top10(self) -> int:
        return max(self.mean_top10, key=self.mean_top10.get)


def run(
    scale: str = "small",
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    workloads: tuple[str, ...] = REPRESENTATIVE_WORKLOADS,
) -> Figure13Result:
    limit = SCALES[scale]["limit"]
    specs = [get_workload(name) for name in workloads]

    baselines = {
        spec.name: run_workload(spec, "none", limit=limit) for spec in specs
    }
    swept = storage_sweep(specs, sizes, limit=limit)

    mean_all: dict[int, float] = {}
    mean_top10: dict[int, float] = {}
    storage_kib: dict[int, float] = {}
    for size in sizes:
        speedups = {
            name: res.speedup_over(baselines[name])
            for name, res in swept[size].items()
        }
        values = sorted(speedups.values(), reverse=True)
        top = values[: min(10, len(values))]
        mean_all[size] = sum(values) / len(values)
        mean_top10[size] = sum(top) / len(top)
        storage_kib[size] = ContextPrefetcherConfig().scaled(size).storage_bits() / 8 / 1024
    return Figure13Result(
        storage_kib=storage_kib, mean_all=mean_all, mean_top10=mean_top10
    )


def render(result: Figure13Result) -> str:
    rows = [
        (
            size,
            f"{result.storage_kib[size]:.0f}",
            f"{result.mean_top10[size]:.2f}",
            f"{result.mean_all[size]:.2f}",
        )
        for size in result.mean_all
    ]
    table = render_table(
        ("CST entries", "storage KiB", "Top10 speedup", "All speedup"),
        rows,
        title="Figure 13 — speedup vs prefetcher storage size",
    )
    summary = (
        f"\nbest size (All): {result.best_size_all()} entries; "
        f"best size (Top10): {result.best_size_top10()} entries"
        f"\n(paper: All peaks at 64-128kB, Top10 at ~256kB)"
    )
    return table + summary


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
