"""Figure 12: IPC speedups over a system without prefetching.

Paper headlines: the context prefetcher averages +32% over the full
benchmark set and +20% over SPEC2006 alone, beats the best competitor
(SMS) by ~76% of delivered gain, and peaks at 4.3× (2.8× within SPEC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.sweep import standard_sweep
from repro.sim.metrics import geomean
from repro.sim.runner import ComparisonResult
from repro.workloads.suites import SUITES


@dataclass
class Figure12Result:
    #: workload -> prefetcher -> speedup over none
    speedups: dict[str, dict[str, float]]
    #: prefetcher -> geometric mean over all swept workloads
    mean_all: dict[str, float]
    #: prefetcher -> geometric mean over the SPEC subset present
    mean_spec: dict[str, float]
    #: best single speedup of the context prefetcher
    context_peak: float
    #: context's mean *gain* relative to the best competing prefetcher's
    gain_vs_best_competitor: float
    best_competitor: str


def run(
    scale: str = "small", comparison: ComparisonResult | None = None
) -> Figure12Result:
    comparison = comparison or standard_sweep(scale)
    speedups = comparison.speedups()
    prefetchers = [p for p in comparison.prefetchers() if p != "none"]
    mean_all = comparison.mean_speedups()
    spec_names = [wl for wl in speedups if wl in SUITES["spec2006"]]
    mean_spec = {
        pf: geomean([speedups[wl][pf] for wl in spec_names]) if spec_names else 0.0
        for pf in prefetchers
    }
    competitors = {pf: mean_all[pf] for pf in prefetchers if pf != "context"}
    if competitors:
        best_competitor = max(competitors, key=competitors.get)
        context_gain = mean_all.get("context", 1.0) - 1.0
        competitor_gain = max(competitors[best_competitor] - 1.0, 1e-9)
        gain_ratio = context_gain / competitor_gain
    else:
        best_competitor = "n/a"
        gain_ratio = 0.0
    context_peak = (
        max(row.get("context", 0.0) for row in speedups.values())
        if "context" in mean_all
        else 0.0
    )
    return Figure12Result(
        speedups=speedups,
        mean_all=mean_all,
        mean_spec=mean_spec,
        context_peak=context_peak,
        gain_vs_best_competitor=gain_ratio,
        best_competitor=best_competitor,
    )


def render(result: Figure12Result) -> str:
    prefetchers = list(result.mean_all)
    rows = [
        (wl,) + tuple(f"{result.speedups[wl][pf]:.2f}" for pf in prefetchers)
        for wl in result.speedups
    ]
    rows.append(
        ("GEOMEAN (all)",)
        + tuple(f"{result.mean_all[pf]:.2f}" for pf in prefetchers)
    )
    rows.append(
        ("GEOMEAN (SPEC)",)
        + tuple(f"{result.mean_spec[pf]:.2f}" for pf in prefetchers)
    )
    table = render_table(
        ("workload",) + tuple(prefetchers),
        rows,
        title="Figure 12 — speedup over no prefetching",
    )
    summary = (
        f"\ncontext peak speedup: {result.context_peak:.2f}x; mean gain vs "
        f"best competitor ({result.best_competitor}): "
        f"{result.gain_vs_best_competitor:.2f}x the gain"
        f"\n(paper: avg 1.32x all / 1.20x SPEC, peak 4.3x, ~1.76x SMS's gain)"
    )
    return table + summary


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
