"""The prefetch/feedback queue (feedback unit, Section 5).

Holds the most recent predictions — real and shadow — awaiting feedback.
On every demand access the queue is searched for predictions of the
current address; the *hit depth* (accesses since issue) drives the reward
function.  Entries that expire from the queue without a hit trigger the
negative expiry reward, demoting stale associations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class QueueEntry:
    """One outstanding prediction."""

    reduced_hash: int  # context that produced the prediction
    delta: int  # stored delta that was replayed
    target_block: int  # predicted block (prefetcher granularity)
    issue_index: int  # access-stream index at prediction time
    shadow: bool = False
    hit: bool = False


@dataclass
class FeedbackEvent:
    """A reward-worthy event surfaced to the learning loop."""

    entry: QueueEntry
    depth: int  # accesses between issue and hit (or capacity on expiry)
    expired: bool = False


class PrefetchQueue:
    """Bounded FIFO of outstanding predictions with hit-depth feedback."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("prefetch queue needs capacity >= 1")
        self.capacity = capacity
        self._queue: deque[QueueEntry] = deque()
        #: target block -> unhit entries, for O(1) demand matching
        self._by_block: dict[int, list[QueueEntry]] = {}
        self.hits = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------

    def push(self, entry: QueueEntry) -> list[FeedbackEvent]:
        """Add a prediction; returns expiry events for displaced entries."""
        events: list[FeedbackEvent] = []
        self._queue.append(entry)
        self._by_block.setdefault(entry.target_block, []).append(entry)
        while len(self._queue) > self.capacity:
            evicted = self._queue.popleft()
            bucket = self._by_block.get(evicted.target_block)
            if bucket is not None:
                try:
                    bucket.remove(evicted)
                except ValueError:
                    pass
                if not bucket:
                    del self._by_block[evicted.target_block]
            if not evicted.hit:
                self.expirations += 1
                events.append(
                    FeedbackEvent(entry=evicted, depth=self.capacity, expired=True)
                )
        return events

    def match(self, block: int, access_index: int) -> list[FeedbackEvent]:
        """All unhit predictions of ``block``; marks them hit."""
        bucket = self._by_block.get(block)
        if not bucket:
            return []
        events = []
        for entry in bucket:
            if entry.hit:
                continue
            entry.hit = True
            self.hits += 1
            events.append(
                FeedbackEvent(entry=entry, depth=access_index - entry.issue_index)
            )
        self._by_block.pop(block, None)
        return events

    # ------------------------------------------------------------------

    def outstanding(self) -> int:
        """Predictions still awaiting a hit."""
        return sum(1 for e in self._queue if not e.hit)

    def outstanding_for(self, block: int) -> bool:
        """True when an unhit prediction of ``block`` is already queued."""
        return bool(self._by_block.get(block))

    def hit_rate(self) -> float:
        """Lifetime fraction of resolved predictions that hit."""
        resolved = self.hits + self.expirations
        return self.hits / resolved if resolved else 0.0

    def reset(self) -> None:
        self._queue.clear()
        self._by_block.clear()
        self.hits = 0
        self.expirations = 0
