"""The live source tree must be violation-free.

This is the test CI gates on: if a rule family starts flagging the real
package, either the code regressed (fix it) or the rule is wrong (fix
the rule) — never silence the finding.
"""

from __future__ import annotations

from repro.analysis import analyze, format_findings, load_manifest, load_project
from repro.analysis.runner import DEFAULT_ROOT


class TestLiveTree:
    def test_package_is_violation_free(self):
        findings = analyze()
        assert findings == [], "\n" + format_findings(findings)

    def test_new_families_are_clean_without_suppressions(self):
        # RACE/FLW/DRIFT landed with a zero suppression budget: the tree
        # itself satisfies them, and nothing is noqa'd away
        from repro.analysis.rules.drift import InlineDriftRule
        from repro.analysis.rules.flow import HotPathDataflowRule
        from repro.analysis.rules.race import ForkSafetyRule
        from repro.analysis.suppress import collect_suppressions

        rules = [ForkSafetyRule(), HotPathDataflowRule(), InlineDriftRule()]
        findings = analyze(rules=rules, suppress=False)
        assert findings == [], "\n" + format_findings(findings)
        assert collect_suppressions(load_project(DEFAULT_ROOT)) == {}

    def test_legacy_families_unchanged_by_engine_swap(self):
        # the semantic engine must not alter what the original per-file
        # families report: the tree was clean before the swap and every
        # legacy rule must still report exactly nothing
        from repro.analysis import all_rules

        legacy = [
            r
            for r in all_rules()
            if r.rule_id.startswith(("DET", "BUD", "CON", "EXP", "PERF"))
        ]
        assert len(legacy) >= 9
        findings = analyze(rules=legacy, suppress=False)
        assert findings == [], "\n" + format_findings(findings)

    def test_manifest_matches_runtime_config(self):
        # the static manifest and the runtime dataclass must agree, so
        # that the lint pass audits what the simulator actually runs
        from repro.core.config import ContextPrefetcherConfig

        manifest = load_manifest()
        config = ContextPrefetcherConfig()
        for name, want in manifest["config_defaults"].items():
            assert getattr(config, name) == want, name

    def test_manifest_total_matches_storage_audit(self):
        # storage_bits() is the runtime Table 2 audit; the manifest's
        # expected total must be the same number, or the BUD rules and
        # the figures would disagree about the hardware budget
        from repro.core.config import ContextPrefetcherConfig

        manifest = load_manifest()
        expected = manifest["derived"]["expected_total_bits"]
        assert ContextPrefetcherConfig().storage_bits() == expected
        assert expected <= manifest["derived"]["max_total_bits"]

    def test_default_root_is_the_package(self):
        assert (DEFAULT_ROOT / "core" / "config.py").is_file()

    def test_seeded_violation_is_caught(self, tmp_path):
        # end-to-end: a module-level random.random() in core/ must fail
        core = tmp_path / "core"
        core.mkdir()
        (core / "evil.py").write_text(
            "import random\nJITTER = random.random()\n", encoding="utf-8"
        )
        findings = analyze(root=tmp_path, manifest={"config_defaults": {}})
        assert any(f.rule == "DET001" for f in findings)
