"""The Context-States Table (CST) — Section 5, "Collection Unit".

Direct-mapped table binding reduced contexts to up to four candidate
address deltas, each with a one-byte score.  Deltas are stored at cache-
line granularity relative to the context's own address (±8kB reach with
the paper's one-byte encoding), which is what keeps each entry at ~9 bytes.
Replacement is score-based: candidates that earned positive rewards
survive; new associations only displace candidates whose score has sunk to
the replacement threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter

from repro.core.config import ContextPrefetcherConfig

#: C-level score key for ranking/victim selection — identical ordering to
#: ``lambda c: c.score`` (and, with ``reverse=True``, to ``-c.score``,
#: since both stable sorts keep insertion order among equal scores).
_SCORE_KEY = attrgetter("score")


@dataclass(slots=True)
class Candidate:
    """One context→address association: a delta and its learned score."""

    delta: int  # in delta-granularity units, relative to the context block
    score: int


@dataclass(slots=True)
class CSTEntry:
    tag: int
    candidates: list[Candidate] = field(default_factory=list)
    #: number of reducer entries currently mapping to this entry
    ptr_count: int = 0
    lookups: int = 0
    replacements: int = 0

    def find(self, delta: int) -> Candidate | None:
        for cand in self.candidates:
            if cand.delta == delta:
                return cand
        return None

    def best(self) -> Candidate | None:
        if not self.candidates:
            return None
        return max(self.candidates, key=_SCORE_KEY)

    def ranked(self) -> list[Candidate]:
        """Candidates sorted by score, best first (stable for ties)."""
        return sorted(self.candidates, key=_SCORE_KEY, reverse=True)


class ContextStatesTable:
    """Direct-mapped CST with score-based replacement."""

    __slots__ = (
        "config",
        "_index_bits",
        "_index_mask",
        "_tag_mask",
        "_delta_min",
        "_delta_max",
        "_links",
        "_initial_score",
        "_replace_threshold",
        "_score_min",
        "_score_max",
        "_entries",
        "associations_added",
        "associations_rejected_full",
        "associations_rejected_range",
        "conflict_evictions",
    )

    def __init__(self, config: ContextPrefetcherConfig):
        self.config = config
        self._index_bits = (config.cst_entries - 1).bit_length()
        self._index_mask = config.cst_entries - 1
        self._tag_mask = (1 << config.cst_tag_bits) - 1
        # the delta bounds are config properties (bit arithmetic on every
        # read); the hot collection path wants plain attributes
        self._delta_min = config.delta_min
        self._delta_max = config.delta_max
        self._links = config.cst_links
        self._initial_score = config.initial_score
        self._replace_threshold = config.replace_threshold
        self._score_min = config.score_min
        self._score_max = config.score_max
        self._entries: dict[int, CSTEntry] = {}
        self.associations_added = 0
        self.associations_rejected_full = 0
        self.associations_rejected_range = 0
        self.conflict_evictions = 0

    # ------------------------------------------------------------------

    def split_key(self, reduced_hash: int) -> tuple[int, int]:
        """Split the 19-bit reduced hash into (index, tag) per Figure 7."""
        index = reduced_hash & self._index_mask
        tag = (reduced_hash >> self._index_bits) & self._tag_mask
        return index, tag

    def lookup(self, reduced_hash: int) -> CSTEntry | None:
        """Return the entry for ``reduced_hash`` if present with a tag match."""
        entry = self._entries.get(reduced_hash & self._index_mask)
        if entry is None or entry.tag != (
            (reduced_hash >> self._index_bits) & self._tag_mask
        ):
            return None
        entry.lookups += 1
        return entry

    def _entry_for_update(self, reduced_hash: int) -> CSTEntry:
        """Entry for ``reduced_hash``, (re)allocating on miss or conflict."""
        index, tag = self.split_key(reduced_hash)
        entry = self._entries.get(index)
        if entry is not None and entry.tag == tag:
            return entry
        if entry is not None:
            self.conflict_evictions += 1
        entry = CSTEntry(tag=tag)
        self._entries[index] = entry
        return entry

    # ------------------------------------------------------------------

    def delta_of(self, context_block: int, target_block: int) -> int | None:
        """Delta (in delta-granularity units) or None when out of range.

        Blocks are at the prefetcher's tracking granularity; deltas are
        stored at the coarser cache-line granularity, so nearby blocks in
        the same line collapse to delta 0 (rejected — never self-prefetch).
        """
        cfg = self.config
        scale = cfg.delta_granularity // cfg.block_bytes
        delta = target_block // scale - context_block // scale
        if delta == 0:
            return None
        if not cfg.delta_min <= delta <= cfg.delta_max:
            return None
        return delta

    def add_association(self, reduced_hash: int, delta: int) -> bool:
        """Record that ``delta`` followed the context (data collection).

        Returns True when the association is now present in the table.
        """
        if not self._delta_min <= delta <= self._delta_max:
            self.associations_rejected_range += 1
            return False
        # inlined _entry_for_update: this runs once per sampled history
        # record on every access
        index = reduced_hash & self._index_mask
        tag = (reduced_hash >> self._index_bits) & self._tag_mask
        entries = self._entries
        entry = entries.get(index)
        if entry is None or entry.tag != tag:
            if entry is not None:
                self.conflict_evictions += 1
            entry = CSTEntry(tag=tag)
            entries[index] = entry
        candidates = entry.candidates
        for cand in candidates:
            if cand.delta == delta:
                return True
        if len(candidates) < self._links:
            candidates.append(Candidate(delta, self._initial_score))
            self.associations_added += 1
            return True
        victim = min(candidates, key=_SCORE_KEY)
        if victim.score <= self._replace_threshold:
            victim.delta = delta
            victim.score = self._initial_score
            entry.replacements += 1
            self.associations_added += 1
            return True
        self.associations_rejected_full += 1
        return False

    def apply_reward(self, reduced_hash: int, delta: int, reward: int) -> bool:
        """Add ``reward`` to the association's score (feedback unit).

        Bypasses :meth:`lookup`/:meth:`~CSTEntry.find` — reward lookups
        don't count as predictions, so the entry is probed directly.
        """
        entry = self._entries.get(reduced_hash & self._index_mask)
        if entry is None or entry.tag != (
            (reduced_hash >> self._index_bits) & self._tag_mask
        ):
            return False
        for cand in entry.candidates:
            if cand.delta == delta:
                # clamp without the max(min(...)) builtin pair; identical
                # since score_min <= score_max
                score = cand.score + reward
                if score > self._score_max:
                    score = self._score_max
                elif score < self._score_min:
                    score = self._score_min
                cand.score = score
                return True
        return False

    # ------------------------------------------------------------------
    # reducer-pointer accounting (overload detection, Section 4.4)

    def add_pointer(self, reduced_hash: int) -> None:
        entry = self._entry_for_update(reduced_hash)
        entry.ptr_count += 1

    def remove_pointer(self, reduced_hash: int) -> None:
        index, tag = self.split_key(reduced_hash)
        entry = self._entries.get(index)
        if entry is not None and entry.tag == tag and entry.ptr_count > 0:
            entry.ptr_count -= 1

    def pointer_count(self, reduced_hash: int) -> int:
        entry = self.lookup(reduced_hash)
        if entry is None:
            return 0
        entry.lookups -= 1
        return entry.ptr_count

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
