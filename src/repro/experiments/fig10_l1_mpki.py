"""Figure 10: L1 misses per kilo-instruction per prefetcher.

The paper shows the memory-intensive benchmarks (L1 MPKI > 5 without
prefetching) plus the average over all benchmarks, with the context
prefetcher consistently lowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.sweep import standard_sweep
from repro.sim.runner import ComparisonResult


@dataclass
class MPKIResult:
    level: str
    #: workload -> prefetcher -> MPKI (filtered to memory-intensive ones)
    table: dict[str, dict[str, float]]
    #: prefetcher -> arithmetic-mean MPKI over *all* swept workloads
    average: dict[str, float]
    threshold: float


def _run_level(
    level: str,
    threshold: float,
    scale: str,
    comparison: ComparisonResult | None,
) -> MPKIResult:
    comparison = comparison or standard_sweep(scale)
    full = comparison.mpki(level)
    prefetchers = comparison.prefetchers()
    table = {
        wl: row for wl, row in full.items() if row.get("none", 0.0) > threshold
    }
    average = {
        pf: sum(full[wl][pf] for wl in full) / len(full) for pf in prefetchers
    }
    return MPKIResult(level=level, table=table, average=average, threshold=threshold)


def run(
    scale: str = "small", comparison: ComparisonResult | None = None
) -> MPKIResult:
    # Figure 10 shows benchmarks with (L1) MPKI > 5
    return _run_level("l1", 5.0, scale, comparison)


def render(result: MPKIResult, *, figure: str = "Figure 10") -> str:
    prefetchers = list(result.average)
    rows = [
        (wl,) + tuple(f"{result.table[wl][pf]:.1f}" for pf in prefetchers)
        for wl in result.table
    ]
    rows.append(
        ("AVERAGE (all)",) + tuple(f"{result.average[pf]:.1f}" for pf in prefetchers)
    )
    return render_table(
        ("workload",) + tuple(prefetchers),
        rows,
        title=(
            f"{figure} — {result.level.upper()} MPKI "
            f"(workloads with baseline MPKI > {result.threshold:g})"
        ),
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
