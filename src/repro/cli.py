"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``     — available workloads (by suite) and prefetchers
* ``run``      — simulate one (workload, prefetcher) pair
* ``sweep``    — workloads × prefetchers speedup table (Figure 12 view)
* ``figure``   — regenerate one paper figure or table set
* ``profile``  — per-unit kernel counters + cProfile for one run
  (see docs/performance.md)
* ``trace``    — the compiled trace store: ``compile``/``info``/``ls``/
  ``gc`` manage binary ``*.rpt`` files under ``results/.cache/traces/``,
  ``export`` writes a JSONL copy for ``replay`` (see docs/trace_store.md)
* ``serve``    — the sweep service: ``submit`` runs a parameter grid
  through the warm-worker scheduler into a queryable result DB with
  resume-after-crash, ``status``/``query`` read it back
  (see docs/sweep_service.md)
* ``lint``     — static-analysis pass (determinism, hardware budget,
  prefetcher contracts, experiment hygiene; see docs/static_analysis.md)

Every subcommand returns a nonzero exit code on failure so that
``make lint`` and CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    ablations,
    characterization,
    convergence,
    fig01_semantic_locality,
    fig05_reward,
    fig08_hit_depth_cdf,
    fig09_accuracy,
    fig10_l1_mpki,
    fig11_l2_mpki,
    fig12_speedup,
    fig13_storage_sweep,
    fig14_layout_agnostic,
    robustness,
    sensitivity,
    suite_summary,
    tables,
)
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES, standard_sweep
from repro.memory.stats import ACCESS_CLASS_ORDER
from repro.sim.config import PREFETCHER_FACTORIES, PREFETCHER_ORDER
from repro.sim.runner import compare, run_workload
from repro.workloads.suites import SUITES, get_workload

#: figure name -> (module with run()/render(), takes scale?)
_FIGURES = {
    "1": (fig01_semantic_locality, False),
    "5": (fig05_reward, False),
    "8": (fig08_hit_depth_cdf, True),
    "9": (fig09_accuracy, True),
    "10": (fig10_l1_mpki, True),
    "11": (fig11_l2_mpki, True),
    "12": (fig12_speedup, True),
    "13": (fig13_storage_sweep, True),
    "14": (fig14_layout_agnostic, True),
    "tables": (tables, False),
    "ablations": (ablations, True),
    "sensitivity": (sensitivity, True),
    "convergence": (convergence, False),
    "characterization": (characterization, False),
    "robustness": (robustness, True),
    "suites": (suite_summary, True),
}


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """The parallel/caching surface shared by sweep-driven commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep grid (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep cell instead of reusing results/.cache/",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory (default: results/.cache)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="rebuild traces in-process instead of using the compiled "
        "trace store",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="trace-store directory (default: results/.cache/traces)",
    )
    parser.add_argument(
        "--native",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run eligible cells through the compiled batch kernel "
        "(bit-exact; --no-native forces the interpreted reference loop)",
    )
    parser.add_argument(
        "--warm-pool",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="dispatch store-backed grids to the persistent warm worker "
        "pool (--no-warm-pool restores the pool-per-call dispatch)",
    )
    parser.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="stream executed cells into (and reuse cells from) a "
        "queryable result DB (see `repro serve`)",
    )
    parser.add_argument(
        "--kernel-threads",
        type=int,
        default=0,
        metavar="T",
        help="OpenMP threads per worker for the kernel's in-shard batch "
        "driver (default: 0, the OpenMP runtime default; results are "
        "bit-identical at any thread count)",
    )


def _configure_execution(args: argparse.Namespace) -> None:
    """Install the --jobs/--no-cache/--no-store choices process-wide.

    Figure modules call :func:`standard_sweep` themselves, so the flags
    are threaded through the execution defaults rather than every
    ``run()`` signature.  Results are bit-identical either way — the
    cache, the trace store and the worker pool only change wall-clock
    time.  The chosen paths go to stderr so scripts can see exactly
    which cache/store directories a run touched.
    """
    from repro.sim.cache import DEFAULT_CACHE_DIR, SweepCache
    from repro.sim.parallel import set_default_execution
    from repro.workloads.store import DEFAULT_TRACE_DIR, TraceStore

    cache = None
    if not args.no_cache:
        cache = SweepCache(args.cache_dir or DEFAULT_CACHE_DIR)
    store = None
    if not args.no_store:
        store = TraceStore(args.store_dir or DEFAULT_TRACE_DIR)
    db = None
    if getattr(args, "db", None):
        from repro.sim.sched.db import ResultDB

        db = ResultDB(args.db)
    warm = getattr(args, "warm_pool", True)
    kernel_threads = max(0, getattr(args, "kernel_threads", 0))
    set_default_execution(
        jobs=args.jobs,
        cache=cache,
        store=store,
        native=args.native,
        warm=warm,
        db=db,
        kernel_threads=kernel_threads,
    )
    print(
        f"execution: jobs={args.jobs}, "
        f"result cache {cache.root if cache else 'off'}, "
        f"trace store {store.root if store else 'off'}, "
        f"kernel {'native' if args.native else 'interpreted'}, "
        f"dispatch {'warm-pool' if warm else 'per-call'}"
        + (f", kernel threads {kernel_threads}" if kernel_threads else "")
        + (f", result DB {db.path}" if db is not None else ""),
        file=sys.stderr,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Semantic locality and context-based prefetching (ISCA 2015) "
            "reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and prefetchers")

    run_p = sub.add_parser("run", help="simulate one workload under one prefetcher")
    run_p.add_argument("workload")
    run_p.add_argument("prefetcher", choices=sorted(PREFETCHER_FACTORIES))
    run_p.add_argument("--limit", type=int, default=None, help="truncate the trace")
    run_p.add_argument(
        "--native",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the compiled batch kernel when the prefetcher supports it",
    )

    sweep_p = sub.add_parser("sweep", help="workloads x prefetchers speedup table")
    sweep_p.add_argument("--scale", choices=sorted(SCALES), default="small")
    sweep_p.add_argument(
        "--workloads", default=None, help="comma-separated workload names"
    )
    sweep_p.add_argument(
        "--prefetchers",
        default=",".join(PREFETCHER_ORDER),
        help="comma-separated prefetcher names",
    )
    sweep_p.add_argument("--limit", type=int, default=None)
    _add_execution_flags(sweep_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig_p.add_argument("which", choices=sorted(_FIGURES, key=str))
    fig_p.add_argument("--scale", choices=sorted(SCALES), default="small")
    _add_execution_flags(fig_p)

    profile_p = sub.add_parser(
        "profile", help="profile one run: per-unit counters + cProfile"
    )
    profile_p.add_argument("workload")
    profile_p.add_argument("prefetcher", choices=sorted(PREFETCHER_FACTORIES))
    profile_p.add_argument("--limit", type=int, default=None, help="truncate the trace")
    profile_p.add_argument(
        "--top", type=int, default=12, help="rows in the cProfile table"
    )
    profile_p.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip the timing table; emit only the deterministic counters",
    )
    profile_p.add_argument(
        "--native",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="profile the compiled batch kernel (reports per-phase "
        "timings) instead of the interpreted per-access loop",
    )

    trace_p = sub.add_parser(
        "trace",
        help="manage the compiled trace store (compile/info/ls/gc/export)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    def _store_dir_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store-dir",
            default=None,
            metavar="DIR",
            help="trace-store directory (default: results/.cache/traces)",
        )

    compile_p = trace_sub.add_parser(
        "compile", help="compile registry workloads into store files"
    )
    compile_p.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="workload names (default: every registry workload)",
    )
    compile_p.add_argument(
        "--force", action="store_true", help="recompile even when current"
    )
    _store_dir_flag(compile_p)

    info_p = trace_sub.add_parser(
        "info", help="show one store file's header (workload name or path)"
    )
    info_p.add_argument("target", help="workload name or *.rpt path")
    _store_dir_flag(info_p)

    ls_p = trace_sub.add_parser(
        "ls", help="list store files; nonzero exit if any are corrupt"
    )
    _store_dir_flag(ls_p)

    gc_p = trace_sub.add_parser(
        "gc", help="drop stale, corrupt and temp store files"
    )
    gc_p.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    _store_dir_flag(gc_p)

    export_p = trace_sub.add_parser(
        "export", help="save a workload's access trace as JSONL (for replay)"
    )
    export_p.add_argument("workload")
    export_p.add_argument("output", help="destination .jsonl path")
    export_p.add_argument("--limit", type=int, default=None)

    serve_p = sub.add_parser(
        "serve",
        help="the sweep service: submit grids to warm workers, query "
        "the result DB (see docs/sweep_service.md)",
    )
    serve_sub = serve_p.add_subparsers(dest="serve_command", required=True)

    def _db_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--db",
            default=None,
            metavar="PATH",
            help="result database (default: results/sweep.db)",
        )

    submit_p = serve_sub.add_parser(
        "submit",
        help="run a workload x config x prefetcher grid, resuming any "
        "cells the DB already holds",
    )
    submit_p.add_argument(
        "--workloads",
        required=True,
        help="comma-separated workload names",
    )
    submit_p.add_argument(
        "--prefetchers",
        default="none,context",
        help="comma-separated prefetcher names (default: none,context)",
    )
    submit_p.add_argument(
        "--cst-sizes",
        default=None,
        metavar="N,N,...",
        help="context-config axis: one CST-size variant per entry "
        "(reducer at 8x, the Figure 13 convention)",
    )
    submit_p.add_argument("--limit", type=int, default=None)
    submit_p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N pending cells this call (checkpointed "
        "partial run; resubmit to continue)",
    )
    _add_execution_flags(submit_p)

    status_p = serve_sub.add_parser(
        "status", help="per-sweep completion counts from the result DB"
    )
    _db_flag(status_p)

    query_p = serve_sub.add_parser(
        "query", help="fetch decoded result cells from the result DB"
    )
    _db_flag(query_p)
    query_p.add_argument("--sweep", default=None, help="full sweep id")
    query_p.add_argument("--workload", default=None)
    query_p.add_argument("--prefetcher", default=None)
    query_p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="table: one summary line per cell; json: full codec payloads",
    )

    replay_p = sub.add_parser(
        "replay", help="simulate a saved JSONL trace under a prefetcher"
    )
    replay_p.add_argument("tracefile")
    replay_p.add_argument("prefetcher", choices=sorted(PREFETCHER_FACTORIES))
    replay_p.add_argument("--stats", action="store_true", help="gem5-style dump")

    lint_p = sub.add_parser(
        "lint", help="run the static-analysis pass over the package"
    )
    lint_p.add_argument(
        "--rules",
        "--select",
        dest="rules",
        default=None,
        metavar="PREFIXES",
        help="comma-separated rule-id prefixes to run (e.g. DET,RACE)",
    )
    lint_p.add_argument(
        "--format",
        dest="format",
        choices=("text", "sarif", "github"),
        default="text",
        help="output format: human text, SARIF 2.1.0, or GitHub annotations",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue with per-code descriptions",
    )
    return parser


def _cmd_list() -> str:
    rows = [(suite, ", ".join(names)) for suite, names in SUITES.items()]
    workloads = render_table(("suite", "workloads"), rows, title="Workloads")
    prefetchers = ", ".join(sorted(PREFETCHER_FACTORIES))
    return f"{workloads}\n\nPrefetchers: {prefetchers}"


def _cmd_run(args: argparse.Namespace) -> str:
    result = run_workload(
        args.workload, args.prefetcher, limit=args.limit, native=args.native
    )
    lines = [
        result.summary(),
        f"cycles={result.cycles}  instructions={result.instructions}",
        f"prefetches: issued={result.prefetches_issued} "
        f"shadow={result.prefetches_shadow} "
        f"redundant={result.prefetches_redundant}",
    ]
    fractions = result.classifier.fractions()
    for cls in ACCESS_CLASS_ORDER:
        lines.append(f"  {cls.value:32s} {fractions[cls]:6.1%}")
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    _configure_execution(args)
    prefetchers = tuple(p.strip() for p in args.prefetchers.split(",") if p.strip())
    if args.workloads:
        workloads = [
            get_workload(name.strip()) for name in args.workloads.split(",")
        ]
        comparison = compare(workloads, prefetchers, limit=args.limit)
    else:
        comparison = standard_sweep(args.scale, prefetchers=prefetchers)
    result = fig12_speedup.run(comparison=comparison)
    rendered = fig12_speedup.render(result)
    # kernel coverage of the executed grid: how many cells the compiled
    # path took, and the top reasons the rest fell back to interpreted
    native_line = comparison.native_summary()
    if native_line is not None:
        rendered = f"{rendered}\n\n{native_line}"
    # corrupt-file recoveries (result cache heals, store degrades) are
    # bit-neutral but worth surfacing next to the kernel-coverage line
    resilience_line = comparison.resilience_summary()
    if resilience_line is not None:
        sep = "\n" if native_line is not None else "\n\n"
        rendered = f"{rendered}{sep}{resilience_line}"
    return rendered


def _cmd_figure(args: argparse.Namespace) -> str:
    _configure_execution(args)
    module, takes_scale = _FIGURES[args.which]
    if module is tables:
        return "\n\n".join((tables.table1(), tables.table2(), tables.table3()))
    result = module.run(args.scale) if takes_scale else module.run()
    return module.render(result)


def _cmd_profile(args: argparse.Namespace) -> str:
    from repro.sim.profile import profile_run, render

    report = profile_run(
        args.workload,
        args.prefetcher,
        limit=args.limit,
        with_cprofile=not args.no_cprofile,
        top=args.top,
        native=args.native,
    )
    return render(report)


def _cmd_trace(args: argparse.Namespace) -> str | tuple[str, int]:
    """The ``trace`` command group over the compiled trace store.

    Corrupt, truncated or version-skewed store files surface here as a
    nonzero exit (``info`` raises, ``ls`` reports and returns 1) — the
    sweep engine itself degrades to rebuilding instead; only the CLI
    makes corruption loud.
    """
    from pathlib import Path

    from repro.workloads.store import DEFAULT_TRACE_DIR, TraceStore, read_meta

    store = TraceStore(getattr(args, "store_dir", None) or DEFAULT_TRACE_DIR)

    if args.trace_command == "export":
        from repro.workloads.serialize import save_trace

        trace = get_workload(args.workload).build().trace()
        if args.limit is not None:
            trace = trace[: args.limit]
        count = save_trace(trace, args.output)
        return f"wrote {count} accesses to {args.output}"

    if args.trace_command == "compile":
        from repro.workloads.suites import all_workloads

        names = args.workloads or [spec.name for spec in all_workloads()]
        lines = []
        for name in names:
            meta, built = store.compile(name, force=args.force)
            verb = "compiled" if built else "current "
            lines.append(
                f"{verb} {name}: {meta.records} records, "
                f"{meta.size_bytes} bytes -> {meta.path}"
            )
        lines.append(f"store: {store.root}")
        return "\n".join(lines)

    if args.trace_command == "info":
        path = Path(args.target)
        if not (path.suffix == ".rpt" or path.exists()):
            path = store.path_for(args.target)
        meta = read_meta(path)  # corrupt/version-skew raises -> exit 1
        return "\n".join(
            [
                f"path:        {meta.path}",
                f"workload:    {meta.workload}",
                f"version:     {meta.version}",
                f"records:     {meta.records}",
                f"size:        {meta.size_bytes} bytes",
                f"fingerprint: {meta.fingerprint}",
                f"source:      {meta.source}",
            ]
        )

    if args.trace_command == "ls":
        entries = store.entries()
        if not entries:
            return f"store {store.root}: empty"
        lines = [f"store {store.root}:"]
        corrupt = 0
        for path, meta, status in entries:
            if meta is None:
                corrupt += 1
                lines.append(f"  CORRUPT {path.name}: {status}")
            else:
                lines.append(
                    f"  {status:7s} {path.name}: {meta.workload}, "
                    f"{meta.records} records, {meta.size_bytes} bytes"
                )
        if corrupt:
            lines.append(f"{corrupt} corrupt file(s); run `repro trace gc`")
        return "\n".join(lines), (1 if corrupt else 0)

    # gc — the trace store, then the native kernel build cache (stale
    # .so artifacts from superseded kernel sources and abandoned
    # build-* scratch directories)
    from repro.sim.native.build import DEFAULT_BUILD_DIR, gc_build_cache

    kept, removed = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    lines = [f"store {store.root}: kept {kept}, {verb} {len(removed)}"]
    lines += [f"  {path.name}" for path in removed]
    nkept, nremoved = gc_build_cache(dry_run=args.dry_run)
    lines.append(
        f"native cache {DEFAULT_BUILD_DIR}: kept {nkept}, "
        f"{verb} {len(nremoved)}"
    )
    lines += [f"  {path.name}" for path in nremoved]
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    """The ``serve`` command group: the sweep service over a result DB.

    ``submit`` executes a grid through the warm-worker scheduler,
    resuming any cells the DB already holds; ``status`` and ``query``
    read the DB without touching the simulation stack at all.
    """
    from repro.serve.service import SweepService, plan_from_axes
    from repro.sim.sched.db import DEFAULT_DB_PATH

    if args.serve_command == "submit":
        _configure_execution(args)
        from repro.sim.parallel import default_execution

        defaults = default_execution()
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        prefetchers = [
            p.strip() for p in args.prefetchers.split(",") if p.strip()
        ]
        cst_sizes = None
        if args.cst_sizes:
            cst_sizes = [
                int(s.strip()) for s in args.cst_sizes.split(",") if s.strip()
            ]
        plan = plan_from_axes(
            workloads=workloads,
            prefetchers=prefetchers,
            cst_sizes=cst_sizes,
            limit=args.limit,
        )
        # --db doubles as the service DB; the execution defaults opened
        # it already when given, otherwise fall back to the default path
        db = defaults.db if defaults.db is not None else DEFAULT_DB_PATH
        service = SweepService(
            db=db,
            store=defaults.store,
            cache=defaults.cache,
            jobs=defaults.jobs,
            native=defaults.native,
            kernel_threads=defaults.kernel_threads,
        )
        stats = service.submit(
            plan,
            progress=lambda line: print(line, file=sys.stderr),
            max_cells=args.max_cells,
        )
        return stats.summary()

    service = SweepService(db=args.db or DEFAULT_DB_PATH)
    if args.serve_command == "status":
        rows = service.status()
        if not rows:
            return f"result DB {service.db.path}: empty"

        def _eta(seconds: float | None) -> str:
            if seconds is None:
                return "-"
            total = int(round(seconds))
            if total >= 3600:
                return f"{total // 3600}h{(total % 3600) // 60:02d}m"
            if total >= 60:
                return f"{total // 60}m{total % 60:02d}s"
            return f"{total}s"

        table = render_table(
            ("sweep", "done", "total", "cells/s", "eta"),
            [
                (
                    row.sweep,
                    str(row.done),
                    str(row.total),
                    "-" if row.cells_per_sec is None else f"{row.cells_per_sec:.1f}",
                    _eta(row.eta_seconds),
                )
                for row in rows
            ],
            title=f"Result DB {service.db.path}",
        )
        return table

    # query
    cells = service.query(
        sweep=args.sweep,
        workload=args.workload,
        prefetcher=args.prefetcher,
    )
    if args.format == "json":
        import json

        from repro.sim.codec import encode_result

        return json.dumps(
            [
                {
                    "key": cell.key,
                    "sweep": cell.sweep,
                    "index": cell.index,
                    "workload": cell.workload,
                    "prefetcher": cell.prefetcher,
                    "result": encode_result(cell.result),
                }
                for cell in cells
            ],
            indent=2,
            sort_keys=True,
        )
    if not cells:
        return "no matching cells"
    lines = [cell.result.summary() for cell in cells]
    lines.append(f"{len(cells)} cell(s)")
    return "\n".join(lines)


def _cmd_replay(args: argparse.Namespace) -> str:
    from repro.sim.export import stats_dump
    from repro.sim.simulator import Simulator
    from repro.workloads.serialize import load_trace

    trace = load_trace(args.tracefile)
    prefetcher = PREFETCHER_FACTORIES[args.prefetcher]()
    result = Simulator(prefetcher).run(trace, workload_name=args.tracefile)
    if args.stats:
        return stats_dump(result)
    return result.summary()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import main as lint_main

    lint_argv: list[str] = []
    if args.rules:
        lint_argv += ["--rules", args.rules]
    if args.format != "text":
        lint_argv += ["--format", args.format]
    if args.list_rules:
        lint_argv.append("--list-rules")
    return lint_main(lint_argv)


_COMMANDS = {
    "list": lambda args: _cmd_list(),
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        # lint prints its own report and owns the 0/1/2 exit contract
        return _cmd_lint(args)
    try:
        output = _COMMANDS[args.command](args)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        # CI and make gate on the exit code; a traceback would bury the
        # actionable message, so report the failure and exit nonzero
        print(f"error: {args.command}: {exc}", file=sys.stderr)
        return 1
    code = 0
    if isinstance(output, tuple):
        output, code = output
    try:
        print(output)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not a failure — but stop
        # the interpreter from tracebacking on the shutdown flush
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return code


if __name__ == "__main__":
    raise SystemExit(main())
