"""A small typed intermediate representation.

Deliberately LLVM-flavoured but minimal: functions are dictionaries of
basic blocks; values live in named virtual registers; memory is accessed
through typed field loads/stores (``obj->field``) and scaled index loads
(``arr[i]``).  The type information — struct declarations with per-field
types — is exactly what the hint-injection pass consumes.

Field types are strings: ``"int"`` for plain data, ``"ptr:<struct>"`` for
a pointer to another (or the same) struct, and ``"ptr"`` for an untyped
pointer.  Only the pointer-ness matters to the pass; the pointee name
feeds type enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def is_pointer_type(type_name: str) -> bool:
    return type_name == "ptr" or type_name.startswith("ptr:")


@dataclass(frozen=True)
class StructDecl:
    """A struct layout: name and (field name -> (offset, type)) map."""

    name: str
    fields: tuple[tuple[str, int, str], ...]  # (field, byte offset, type)

    def __post_init__(self) -> None:
        seen_names: set[str] = set()
        seen_offsets: set[int] = set()
        for fname, offset, _ in self.fields:
            if fname in seen_names:
                raise ValueError(f"duplicate field {fname!r} in {self.name}")
            if offset in seen_offsets:
                raise ValueError(f"duplicate offset {offset} in {self.name}")
            seen_names.add(fname)
            seen_offsets.add(offset)

    def field_info(self, fname: str) -> tuple[int, str]:
        for name, offset, type_name in self.fields:
            if name == fname:
                return offset, type_name
        raise KeyError(f"struct {self.name} has no field {fname!r}")

    @property
    def size(self) -> int:
        """Payload extent rounded up to 8-byte slots (no trailing pad)."""
        end = max(offset + 8 for _, offset, _ in self.fields)
        return (end + 7) & ~7


# ----------------------------------------------------------------------
# instructions


@dataclass(frozen=True)
class Load:
    """``dst = base->field`` — typed field load through a pointer."""

    dst: str
    base: str  # register holding the object pointer
    struct: str
    field: str


@dataclass(frozen=True)
class LoadIdx:
    """``dst = base[index]`` — scaled array-element load."""

    dst: str
    base: str  # register holding the array base address
    index: str  # register holding the element index
    scale: int = 8
    elem_type: str = "int"  # "int" or pointer types


@dataclass(frozen=True)
class Store:
    """``base->field = src``."""

    src: str
    base: str
    struct: str
    field: str


@dataclass(frozen=True)
class Arith:
    """``dst = a <op> b`` where operands are registers or literals."""

    dst: str
    op: str  # add, sub, mul, div, mod, and, or, xor, shl, shr
    a: "str | int"
    b: "str | int"


@dataclass(frozen=True)
class Cmp:
    """``dst = a <op> b`` (0/1) with op in eq, ne, lt, le, gt, ge."""

    dst: str
    op: str
    a: "str | int"
    b: "str | int"


@dataclass(frozen=True)
class BranchIf:
    """Conditional branch on a register's truthiness."""

    cond: str
    if_true: str
    if_false: str


@dataclass(frozen=True)
class Jump:
    target: str


@dataclass(frozen=True)
class Ret:
    value: "str | int" = 0


Instruction = Load | LoadIdx | Store | Arith | Cmp | BranchIf | Jump | Ret

_TERMINATORS = (BranchIf, Jump, Ret)


@dataclass
class Function:
    """One IR function: named basic blocks, an entry label, parameters."""

    name: str
    params: tuple[str, ...]
    entry: str
    blocks: dict[str, list[Instruction]]
    structs: dict[str, StructDecl] = field(default_factory=dict)
    #: register whose live value feeds the REG_VALUE context attribute
    key_register: str | None = None

    def validate(self) -> None:
        """Raise ValueError on malformed control flow or references."""
        if self.entry not in self.blocks:
            raise ValueError(f"entry block {self.entry!r} missing")
        for label, instrs in self.blocks.items():
            if not instrs:
                raise ValueError(f"block {label!r} is empty")
            if not isinstance(instrs[-1], _TERMINATORS):
                raise ValueError(f"block {label!r} lacks a terminator")
            for instr in instrs[:-1]:
                if isinstance(instr, _TERMINATORS):
                    raise ValueError(
                        f"terminator mid-block in {label!r}: {instr}"
                    )
            for instr in instrs:
                if isinstance(instr, BranchIf):
                    targets = (instr.if_true, instr.if_false)
                elif isinstance(instr, Jump):
                    targets = (instr.target,)
                else:
                    targets = ()
                for target in targets:
                    if target not in self.blocks:
                        raise ValueError(
                            f"branch to unknown block {target!r} in {label!r}"
                        )
                if isinstance(instr, (Load, Store)):
                    if instr.struct not in self.structs:
                        raise ValueError(
                            f"unknown struct {instr.struct!r} in {label!r}"
                        )
                    self.structs[instr.struct].field_info(instr.field)


class FunctionBuilder:
    """Fluent construction of IR functions.

    Example::

        fb = FunctionBuilder("list_sum", params=("head",))
        fb.struct("node", [("value", 0, "int"), ("next", 8, "ptr:node")])
        fb.block("entry")
        fb.arith("sum", "add", 0, 0)
        fb.arith("cur", "add", "head", 0)
        fb.jump("loop")
        ...
    """

    def __init__(self, name: str, params: tuple[str, ...] = ()):
        self._function = Function(
            name=name, params=tuple(params), entry="", blocks={}
        )
        self._current: list[Instruction] | None = None

    def struct(self, name: str, fields: list[tuple[str, int, str]]) -> "FunctionBuilder":
        self._function.structs[name] = StructDecl(name=name, fields=tuple(fields))
        return self

    def key_register(self, reg: str) -> "FunctionBuilder":
        self._function.key_register = reg
        return self

    def block(self, label: str) -> "FunctionBuilder":
        if label in self._function.blocks:
            raise ValueError(f"duplicate block {label!r}")
        self._function.blocks[label] = []
        self._current = self._function.blocks[label]
        if not self._function.entry:
            self._function.entry = label
        return self

    def _emit(self, instr: Instruction) -> "FunctionBuilder":
        if self._current is None:
            raise ValueError("no open block; call block() first")
        self._current.append(instr)
        return self

    def load(self, dst: str, base: str, struct: str, field_name: str):
        return self._emit(Load(dst=dst, base=base, struct=struct, field=field_name))

    def load_idx(self, dst: str, base: str, index: str, *, scale=8, elem_type="int"):
        return self._emit(
            LoadIdx(dst=dst, base=base, index=index, scale=scale, elem_type=elem_type)
        )

    def store(self, src: str, base: str, struct: str, field_name: str):
        return self._emit(Store(src=src, base=base, struct=struct, field=field_name))

    def arith(self, dst: str, op: str, a, b):
        return self._emit(Arith(dst=dst, op=op, a=a, b=b))

    def cmp(self, dst: str, op: str, a, b):
        return self._emit(Cmp(dst=dst, op=op, a=a, b=b))

    def branch_if(self, cond: str, if_true: str, if_false: str):
        return self._emit(BranchIf(cond=cond, if_true=if_true, if_false=if_false))

    def jump(self, target: str):
        return self._emit(Jump(target=target))

    def ret(self, value=0):
        return self._emit(Ret(value=value))

    def build(self) -> Function:
        self._function.validate()
        return self._function
