"""C source for the native batch kernel (compiled at runtime via cffi).

The kernel is a line-for-line port of the interpreted hot path — the
core timing model, the two-level hierarchy with MSHRs/prefetch buffers,
the five table-based prefetcher families, and the RL context prefetcher
(CST + reducer + reward + ε-greedy/softmax bandit) — with every
tie-breaking data structure (the CPython heapq layout for the
pending-fill heap, the dict-insertion-order LRU of the caches and index
tables, the prefetch-queue bucket lists) reproduced exactly so results
are bit-identical.  The context port additionally reproduces CPython's
``random.Random`` (MT19937 seeded via ``init_by_array``), the int/tuple
hash pipeline behind the context keys, and float ``round`` half-to-even,
so every RNG draw and hash matches the interpreted oracle bit-for-bit.
``docs/native_kernel.md`` carries the per-phase exactness arguments; the
golden/parity/fuzz suites prove them.
"""

from __future__ import annotations

#: number of int64 slots rp_run writes into its output block
OUT_SLOTS = 19 + 129

#: number of int64 slots rp_pf_ctx_counters fills (satellite counters the
#: profile CLI reports for native context runs)
CTX_COUNTER_SLOTS = 20

#: version of the batch-call layout below (``CDEF_BATCH`` +
#: ``SOURCE_BATCH``); analysis rule PERF005 pins the pair's content hash
#: per version, so editing the batch driver without bumping this (and
#: re-pinning) fails ``repro lint``
BATCH_VERSION = 1

CDEF_CORE = """
typedef struct RpSim RpSim;
typedef struct RpPf RpPf;
typedef struct RpRng RpRng;

RpSim *rp_sim_new(const int64_t *hier_cfg, const int64_t *core_cfg);
void rp_sim_free(RpSim *sim);
void rp_reset_stats(RpSim *sim);
RpPf *rp_pf_new(int kind, const int64_t *cfg);
RpPf *rp_pf_ctx_new(const int64_t *icfg, const double *dcfg,
                    const uint32_t *seed_key, int seed_len);
void rp_pf_free(RpPf *pf);
double rp_pf_ctx_accuracy(const RpPf *pf);
void rp_pf_ctx_counters(const RpPf *pf, int64_t *out);
int64_t rp_pf_ctx_hist_len(const RpPf *pf);
void rp_pf_ctx_hist(const RpPf *pf, int64_t *depths, int64_t *counts);
int rp_run(RpSim *sim, RpPf *pf, int64_t n, int64_t start_index,
           const uint64_t *addrs, const uint64_t *pcs,
           const uint64_t *lines, const uint32_t *inst_gaps,
           const uint8_t *flags,
           const int64_t *values, const int64_t *reg_values,
           const uint64_t *branch_bits, const uint16_t *branch_counts,
           const uint32_t *type_ids, const uint32_t *link_offsets,
           const uint8_t *ref_forms, int64_t *out);

RpRng *rp_rng_new(const uint32_t *key, int key_len);
void rp_rng_free(RpRng *rng);
double rp_rng_random(RpRng *rng);
uint32_t rp_rng_getrandbits(RpRng *rng, int k);
int64_t rp_rng_choice_index(RpRng *rng, int64_t n);
int64_t rp_rng_choices_index(RpRng *rng, const double *weights, int64_t n);
int64_t rp_hash_uint(uint64_t v);
int64_t rp_hash_int(int64_t v);
int64_t rp_hash_tuple(const int64_t *item_hashes, int64_t n);
int64_t rp_ctx_key(const int64_t *values, int active_bits);
"""

SOURCE_RUNTIME = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* open-addressing hash map: int64 key -> int64 value.  Linear probing
 * with backward-shift deletion (no tombstones); iteration order is
 * never observed, matching the plain-dict uses it mirrors. */

static uint64_t mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

typedef struct {
    int64_t *keys;
    int64_t *vals;
    uint8_t *used;
    size_t cap;   /* power of two */
    size_t count;
} Map;

static int map_init(Map *m, size_t cap) {
    m->cap = cap; m->count = 0;
    m->keys = (int64_t *)malloc(cap * sizeof(int64_t));
    m->vals = (int64_t *)malloc(cap * sizeof(int64_t));
    m->used = (uint8_t *)calloc(cap, 1);
    return m->keys && m->vals && m->used;
}

static void map_free(Map *m) {
    free(m->keys); free(m->vals); free(m->used);
    m->keys = 0; m->vals = 0; m->used = 0; m->cap = 0; m->count = 0;
}

static void map_clear(Map *m) {
    memset(m->used, 0, m->cap);
    m->count = 0;
}

static int map_grow(Map *m);

/* returns slot of key, or (size_t)-1 */
static size_t map_find(const Map *m, int64_t key) {
    size_t mask = m->cap - 1;
    size_t i = (size_t)mix64((uint64_t)key) & mask;
    while (m->used[i]) {
        if (m->keys[i] == key) return i;
        i = (i + 1) & mask;
    }
    return (size_t)-1;
}

static int map_set(Map *m, int64_t key, int64_t val) {
    if ((m->count + 1) * 4 >= m->cap * 3) {
        if (!map_grow(m)) return 0;
    }
    size_t mask = m->cap - 1;
    size_t i = (size_t)mix64((uint64_t)key) & mask;
    while (m->used[i]) {
        if (m->keys[i] == key) { m->vals[i] = val; return 1; }
        i = (i + 1) & mask;
    }
    m->keys[i] = key; m->vals[i] = val; m->used[i] = 1; m->count++;
    return 1;
}

static int map_grow(Map *m) {
    Map bigger;
    if (!map_init(&bigger, m->cap * 2)) return 0;
    for (size_t i = 0; i < m->cap; i++) {
        if (m->used[i]) map_set(&bigger, m->keys[i], m->vals[i]);
    }
    map_free(m);
    *m = bigger;
    return 1;
}

/* value of key, or `absent` when missing */
static int64_t map_get(const Map *m, int64_t key, int64_t absent) {
    size_t i = map_find(m, key);
    return i == (size_t)-1 ? absent : m->vals[i];
}

static void map_del_slot(Map *m, size_t i) {
    size_t mask = m->cap - 1;
    size_t j = i;
    for (;;) {
        m->used[i] = 0;
        for (;;) {
            j = (j + 1) & mask;
            if (!m->used[j]) { m->count--; return; }
            size_t k = (size_t)mix64((uint64_t)m->keys[j]) & mask;
            /* keep entries whose home slot lies cyclically in (i, j] */
            if (i <= j ? (k <= i || k > j) : (k <= i && k > j)) break;
        }
        m->keys[i] = m->keys[j];
        m->vals[i] = m->vals[j];
        m->used[i] = 1;
        i = j;
    }
}

static void map_del(Map *m, int64_t key) {
    size_t i = map_find(m, key);
    if (i != (size_t)-1) map_del_slot(m, i);
}

/* pop(key, default): removes and returns, like dict.pop */
static int64_t map_pop(Map *m, int64_t key, int64_t absent) {
    size_t i = map_find(m, key);
    if (i == (size_t)-1) return absent;
    int64_t v = m->vals[i];
    map_del_slot(m, i);
    return v;
}

/* ------------------------------------------------------------------ */
/* growable FIFO ring of (idx, line) pairs: the prediction logs */

typedef struct {
    int64_t *idx;
    int64_t *line;
    size_t cap;   /* power of two */
    size_t head;
    size_t len;
} Log;

static int log_init(Log *g, size_t cap) {
    g->cap = cap; g->head = 0; g->len = 0;
    g->idx = (int64_t *)malloc(cap * sizeof(int64_t));
    g->line = (int64_t *)malloc(cap * sizeof(int64_t));
    return g->idx && g->line;
}

static void log_free(Log *g) {
    free(g->idx); free(g->line);
    g->idx = 0; g->line = 0; g->cap = 0; g->head = 0; g->len = 0;
}

static void log_clear(Log *g) { g->head = 0; g->len = 0; }

static int log_push(Log *g, int64_t idx, int64_t line) {
    if (g->len == g->cap) {
        size_t ncap = g->cap * 2;
        int64_t *ni = (int64_t *)malloc(ncap * sizeof(int64_t));
        int64_t *nl = (int64_t *)malloc(ncap * sizeof(int64_t));
        if (!ni || !nl) { free(ni); free(nl); return 0; }
        for (size_t i = 0; i < g->len; i++) {
            size_t s = (g->head + i) & (g->cap - 1);
            ni[i] = g->idx[s]; nl[i] = g->line[s];
        }
        free(g->idx); free(g->line);
        g->idx = ni; g->line = nl; g->cap = ncap; g->head = 0;
    }
    size_t s = (g->head + g->len) & (g->cap - 1);
    g->idx[s] = idx; g->line[s] = line;
    g->len++;
    return 1;
}

static void log_pop(Log *g, int64_t *idx, int64_t *line) {
    *idx = g->idx[g->head]; *line = g->line[g->head];
    g->head = (g->head + 1) & (g->cap - 1);
    g->len--;
}

/* ------------------------------------------------------------------ */
/* pending-fill heap: a verbatim port of CPython's heapq siftdown/siftup
 * over elements compared ONLY on completes_at with strict <, matching
 * _PendingFill.__lt__ — equal-time fills therefore pop in the identical
 * structure-dependent order as the interpreted path. */

typedef struct {
    int64_t t;       /* completes_at */
    int64_t line;
    uint8_t prefetched;
    uint8_t fill_l2;
} Fill;

typedef struct { Fill *a; size_t len, cap; } FillHeap;

static int fheap_init(FillHeap *h, size_t cap) {
    h->len = 0; h->cap = cap;
    h->a = (Fill *)malloc(cap * sizeof(Fill));
    return h->a != 0;
}

static void fheap_free(FillHeap *h) { free(h->a); h->a = 0; h->len = 0; h->cap = 0; }

static void fheap_siftdown(FillHeap *h, size_t startpos, size_t pos) {
    Fill newitem = h->a[pos];
    while (pos > startpos) {
        size_t parentpos = (pos - 1) >> 1;
        Fill parent = h->a[parentpos];
        if (newitem.t < parent.t) { h->a[pos] = parent; pos = parentpos; continue; }
        break;
    }
    h->a[pos] = newitem;
}

static void fheap_siftup(FillHeap *h, size_t pos) {
    size_t startpos = pos, endpos = h->len;
    Fill newitem = h->a[pos];
    size_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        size_t rightpos = childpos + 1;
        if (rightpos < endpos && !(h->a[childpos].t < h->a[rightpos].t))
            childpos = rightpos;
        h->a[pos] = h->a[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h->a[pos] = newitem;
    fheap_siftdown(h, startpos, pos);
}

static int fheap_push(FillHeap *h, Fill item) {
    if (h->len == h->cap) {
        size_t ncap = h->cap * 2;
        Fill *na = (Fill *)realloc(h->a, ncap * sizeof(Fill));
        if (!na) return 0;
        h->a = na; h->cap = ncap;
    }
    h->a[h->len++] = item;
    fheap_siftdown(h, 0, h->len - 1);
    return 1;
}

static Fill fheap_pop(FillHeap *h) {
    Fill lastelt = h->a[--h->len];
    if (h->len) {
        Fill returnitem = h->a[0];
        h->a[0] = lastelt;
        fheap_siftup(h, 0);
        return returnitem;
    }
    return lastelt;
}

/* ------------------------------------------------------------------ */
/* MSHR expiry heap: (completes_at, line) tuples, full lexicographic
 * order — lines are unique so successive pops are totally sorted and
 * any correct min-heap matches the interpreted retirement order. */

typedef struct { int64_t t; int64_t line; } Pair;

typedef struct { Pair *a; size_t len, cap; } PairHeap;

static int pheap_lt(Pair x, Pair y) {
    return x.t < y.t || (x.t == y.t && x.line < y.line);
}

static int pheap_init(PairHeap *h, size_t cap) {
    h->len = 0; h->cap = cap;
    h->a = (Pair *)malloc(cap * sizeof(Pair));
    return h->a != 0;
}

static void pheap_free(PairHeap *h) { free(h->a); h->a = 0; h->len = 0; h->cap = 0; }

static void pheap_siftdown(PairHeap *h, size_t startpos, size_t pos) {
    Pair newitem = h->a[pos];
    while (pos > startpos) {
        size_t parentpos = (pos - 1) >> 1;
        Pair parent = h->a[parentpos];
        if (pheap_lt(newitem, parent)) { h->a[pos] = parent; pos = parentpos; continue; }
        break;
    }
    h->a[pos] = newitem;
}

static void pheap_siftup(PairHeap *h, size_t pos) {
    size_t startpos = pos, endpos = h->len;
    Pair newitem = h->a[pos];
    size_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        size_t rightpos = childpos + 1;
        if (rightpos < endpos && !pheap_lt(h->a[childpos], h->a[rightpos]))
            childpos = rightpos;
        h->a[pos] = h->a[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h->a[pos] = newitem;
    pheap_siftdown(h, startpos, pos);
}

static int pheap_push(PairHeap *h, Pair item) {
    if (h->len == h->cap) {
        size_t ncap = h->cap * 2;
        Pair *na = (Pair *)realloc(h->a, ncap * sizeof(Pair));
        if (!na) return 0;
        h->a = na; h->cap = ncap;
    }
    h->a[h->len++] = item;
    pheap_siftdown(h, 0, h->len - 1);
    return 1;
}

static Pair pheap_pop(PairHeap *h) {
    Pair lastelt = h->a[--h->len];
    if (h->len) {
        Pair returnitem = h->a[0];
        h->a[0] = lastelt;
        pheap_siftup(h, 0);
        return returnitem;
    }
    return lastelt;
}
"""

SOURCE_MEMORY = r"""
/* ------------------------------------------------------------------ */
/* MSHR file: linear entry table (files are small) + expiry heap with
 * the _next_expiry short-circuit invariant; lazy retirement exactly as
 * the interpreted MSHRFile.  NEVER == INT64_MAX stands in for inf. */

#define MSHR_NEVER INT64_MAX

typedef struct {
    int64_t line;
    int64_t completes_at;
    uint8_t used;
} MEntry;

typedef struct {
    int num_entries;
    MEntry *entries;
    int count;
    PairHeap heap;
    int64_t next_expiry;
} Mshr;

static int mshr_init(Mshr *m, int num_entries) {
    m->num_entries = num_entries;
    m->count = 0;
    m->next_expiry = MSHR_NEVER;
    m->entries = (MEntry *)calloc((size_t)num_entries, sizeof(MEntry));
    if (!m->entries) return 0;
    return pheap_init(&m->heap, (size_t)num_entries + 1);
}

static void mshr_free(Mshr *m) {
    free(m->entries); m->entries = 0;
    pheap_free(&m->heap);
}

static MEntry *mshr_slot(Mshr *m, int64_t line) {
    for (int i = 0; i < m->num_entries; i++) {
        if (m->entries[i].used && m->entries[i].line == line) return &m->entries[i];
    }
    return 0;
}

static void mshr_expire(Mshr *m, int64_t now) {
    if (now < m->next_expiry) return;
    while (m->heap.len && m->heap.a[0].t <= now) {
        Pair p = pheap_pop(&m->heap);
        MEntry *e = mshr_slot(m, p.line);
        e->used = 0;
        m->count--;
    }
    m->next_expiry = m->heap.len ? m->heap.a[0].t : MSHR_NEVER;
}

static int mshr_available(Mshr *m, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    return m->num_entries - m->count;
}

/* completion time of an in-flight line, or -1 */
static int64_t mshr_lookup(Mshr *m, int64_t line, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    MEntry *e = mshr_slot(m, line);
    return e ? e->completes_at : -1;
}

static int64_t mshr_earliest(Mshr *m, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    if (!m->count) return -1;
    return m->next_expiry;
}

static int mshr_allocate(Mshr *m, int64_t line, int64_t now, int64_t completes_at) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    MEntry *e = mshr_slot(m, line);
    if (e) return 1;  /* merge: completion time unchanged */
    if (m->count >= m->num_entries) return 0;
    for (int i = 0; i < m->num_entries; i++) {
        if (!m->entries[i].used) {
            m->entries[i].line = line;
            m->entries[i].completes_at = completes_at;
            m->entries[i].used = 1;
            break;
        }
    }
    pheap_push(&m->heap, (Pair){completes_at, line});
    if (completes_at < m->next_expiry) m->next_expiry = completes_at;
    m->count++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* set-associative cache: each set is an array ordered LRU -> MRU, the
 * exact mirror of the dict-as-LRU sets (array order == dict insertion
 * order; move-to-end == delete+reinsert; victim == first entry). */

typedef struct {
    int64_t line;
    uint8_t prefetched;
    uint8_t referenced;
} CLine;

typedef struct {
    int64_t num_sets;   /* power of two (validated by CacheConfig) */
    int ways;
    CLine *data;        /* num_sets * ways */
    int *counts;
    int64_t unused_prefetch_evictions;
    int64_t used_prefetch_fills;
} NCache;

static int cache_init(NCache *c, int64_t num_sets, int ways) {
    c->num_sets = num_sets;
    c->ways = ways;
    c->unused_prefetch_evictions = 0;
    c->used_prefetch_fills = 0;
    /* data stays malloc: every read of a set is bounded by counts[s]
     * and slots are written before the count covering them grows, so
     * no line is ever read uninitialised.  Zeroing would memset the
     * full L2 array (~32k lines) per simulator — the dominant cost of
     * constructing the thousands of per-cell sims a batched sweep
     * needs (counts, which the bound reads, must stay calloc). */
    c->data = (CLine *)malloc((size_t)(num_sets * ways) * sizeof(CLine));
    c->counts = (int *)calloc((size_t)num_sets, sizeof(int));
    return c->data && c->counts;
}

static void cache_free(NCache *c) {
    free(c->data); free(c->counts);
    c->data = 0; c->counts = 0;
}

static int cache_contains(NCache *c, int64_t line) {
    CLine *set = c->data + (line & (c->num_sets - 1)) * c->ways;
    int n = c->counts[line & (c->num_sets - 1)];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) return 1;
    }
    return 0;
}

/* demand_lookup: (found, fresh_prefetch) with lookup side effects */
static int cache_demand_lookup(NCache *c, int64_t line, int *fresh_prefetch) {
    int64_t s = line & (c->num_sets - 1);
    CLine *set = c->data + s * c->ways;
    int n = c->counts[s];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) {
            CLine e = set[i];
            memmove(set + i, set + i + 1, (size_t)(n - 1 - i) * sizeof(CLine));
            int fresh = e.prefetched && !e.referenced;
            if (fresh) c->used_prefetch_fills++;
            e.referenced = 1;
            set[n - 1] = e;
            *fresh_prefetch = fresh;
            return 1;
        }
    }
    *fresh_prefetch = 0;
    return 0;
}

/* Cache.lookup: hit? with LRU + reference side effects */
static int cache_lookup(NCache *c, int64_t line) {
    int fresh;
    return cache_demand_lookup(c, line, &fresh);
}

static void cache_fill(NCache *c, int64_t line, int prefetched) {
    int64_t s = line & (c->num_sets - 1);
    CLine *set = c->data + s * c->ways;
    int n = c->counts[s];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) {
            /* refresh LRU position; never downgrade flags */
            CLine e = set[i];
            memmove(set + i, set + i + 1, (size_t)(n - 1 - i) * sizeof(CLine));
            set[n - 1] = e;
            return;
        }
    }
    if (n >= c->ways) {
        CLine victim = set[0];
        if (victim.prefetched && !victim.referenced) c->unused_prefetch_evictions++;
        memmove(set, set + 1, (size_t)(n - 1) * sizeof(CLine));
        n--;
    }
    set[n].line = line;
    set[n].prefetched = (uint8_t)prefetched;
    set[n].referenced = 0;
    c->counts[s] = n + 1;
}

static int64_t cache_resident_unused(NCache *c) {
    int64_t total = 0;
    for (int64_t s = 0; s < c->num_sets; s++) {
        CLine *set = c->data + s * c->ways;
        int n = c->counts[s];
        for (int i = 0; i < n; i++) {
            if (set[i].prefetched && !set[i].referenced) total++;
        }
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* two-level hierarchy */

/* access classes, in ACCESS_CLASS_ORDER */
#define AC_HIT_PREFETCHED 0
#define AC_SHORTER_WAIT 1
#define AC_NON_TIMELY 2
#define AC_MISS_NOT_PREFETCHED 3
#define AC_HIT_OLDER_DEMAND 4
#define AC_PREFETCH_NEVER_HIT 5

/* served-by codes */
#define SERVED_L1 0
#define SERVED_MSHR 1
#define SERVED_L2 2
#define SERVED_DRAM 3

typedef struct {
    int64_t line_bytes;
    int64_t l1_latency, l2_hit_latency, dram_fill_latency, service_interval;
    int64_t pf_reserve, backlog_depth;
    uint8_t prefetch_fill_l1;
    NCache l1, l2;
    Mshr l1m, l2m, pfb;
    FillHeap pending;
    int64_t *backlog;
    int backlog_len;
    int64_t dram_next_free;
    int64_t dram_fetches;
    Map predicted;          /* _predicted_not_issued */
    Log pred_log;
    int64_t prediction_window;
    int64_t access_index;
    int64_t l1_acc, l1_hit, l1_miss;
    int64_t l2_acc, l2_hit, l2_miss;
    int64_t prefetches_issued, prefetches_rejected_mshr, prefetches_redundant;
} Hier;

static int64_t hier_dram_completion(Hier *h, int64_t now, int64_t base_latency) {
    int64_t start = h->dram_next_free;
    if (now > start) start = now;
    h->dram_next_free = start + h->service_interval;
    h->dram_fetches++;
    return start + base_latency;
}

static void hier_note_unissued(Hier *h, int64_t line) {
    int64_t index = h->access_index;
    map_set(&h->predicted, line, index);
    log_push(&h->pred_log, index, line);
    int64_t cutoff = index - h->prediction_window;
    while (h->pred_log.len && h->pred_log.idx[h->pred_log.head] < cutoff) {
        int64_t idx, ln;
        log_pop(&h->pred_log, &idx, &ln);
        if (map_get(&h->predicted, ln, -1) == idx) map_del(&h->predicted, ln);
    }
}

/* try_issue_prefetch result codes */
#define TRY_NONE 0
#define TRY_ISSUED 1
#define TRY_RESIDENT_L2 2

static int hier_try_issue(Hier *h, int64_t line, int64_t now) {
    if (mshr_available(&h->pfb, now) <= 0) return TRY_NONE;
    int64_t completes_at;
    uint8_t fill_l2;
    if (cache_contains(&h->l2, line)) {
        if (!h->prefetch_fill_l1) {
            h->prefetches_redundant++;
            return TRY_RESIDENT_L2;
        }
        cache_lookup(&h->l2, line);
        completes_at = now + h->l2_hit_latency;
        fill_l2 = 0;
    } else {
        if (mshr_available(&h->l2m, now) <= 0) return TRY_NONE;
        completes_at = hier_dram_completion(h, now, h->dram_fill_latency);
        fill_l2 = 1;
        mshr_allocate(&h->l2m, line, now, completes_at);
    }
    mshr_allocate(&h->pfb, line, now, completes_at);
    fheap_push(&h->pending, (Fill){completes_at, line, 1, fill_l2});
    h->prefetches_issued++;
    return TRY_ISSUED;
}

static void hier_drain_backlog(Hier *h, int64_t now) {
    while (h->backlog_len && mshr_available(&h->pfb, now) > 0) {
        int64_t line = h->backlog[0];
        if (cache_contains(&h->l1, line)
            || mshr_lookup(&h->pfb, line, now) >= 0
            || mshr_lookup(&h->l1m, line, now) >= 0) {
            memmove(h->backlog, h->backlog + 1, (size_t)(h->backlog_len - 1) * sizeof(int64_t));
            h->backlog_len--;
            continue;
        }
        if (hier_try_issue(h, line, now) == TRY_NONE) break;
        memmove(h->backlog, h->backlog + 1, (size_t)(h->backlog_len - 1) * sizeof(int64_t));
        h->backlog_len--;
    }
}

static void hier_apply_fills(Hier *h, int64_t now) {
    if (h->pending.len && h->pending.a[0].t <= now) {
        while (h->pending.len && h->pending.a[0].t <= now) {
            Fill f = fheap_pop(&h->pending);
            if (f.fill_l2) cache_fill(&h->l2, f.line, f.prefetched);
            if (!f.prefetched || h->prefetch_fill_l1) cache_fill(&h->l1, f.line, f.prefetched);
        }
    }
    if (h->backlog_len) hier_drain_backlog(h, now);
}

/* demand access; fills the latency / l1_hit / served / ac out-params */
static void hier_demand_access(Hier *h, int64_t line, int64_t now,
                               int64_t *latency, int *l1_hit, int *served, int *ac) {
    if ((h->pending.len && h->pending.a[0].t <= now) || h->backlog_len)
        hier_apply_fills(h, now);
    h->access_index++;
    int64_t l1_latency = h->l1_latency;

    int fresh;
    if (cache_demand_lookup(&h->l1, line, &fresh)) {
        h->l1_acc++; h->l1_hit++;
        *latency = l1_latency;
        *l1_hit = 1;
        *served = SERVED_L1;
        *ac = fresh ? AC_HIT_PREFETCHED : AC_HIT_OLDER_DEMAND;
        return;
    }
    h->l1_acc++; h->l1_miss++;
    *l1_hit = 0;

    int64_t pf_inflight = mshr_lookup(&h->pfb, line, now);
    if (pf_inflight >= 0) {
        int64_t lat = pf_inflight - now;
        if (lat < l1_latency) lat = l1_latency;
        *latency = lat;
        *served = SERVED_MSHR;
        *ac = AC_SHORTER_WAIT;
        return;
    }

    int64_t inflight = mshr_lookup(&h->l1m, line, now);
    if (inflight >= 0) {
        mshr_allocate(&h->l1m, line, now, inflight);  /* secondary-miss merge */
        int64_t lat = inflight - now;
        if (lat < l1_latency) lat = l1_latency;
        *latency = lat;
        *served = SERVED_MSHR;
        *ac = AC_HIT_OLDER_DEMAND;
        return;
    }

    int l2_hit = cache_lookup(&h->l2, line);
    h->l2_acc++;
    if (l2_hit) h->l2_hit++; else h->l2_miss++;

    int64_t issue_at = now;
    if (mshr_available(&h->l1m, now) == 0) {
        int64_t earliest = mshr_earliest(&h->l1m, now);
        if (earliest > issue_at) issue_at = earliest;
    }

    int64_t completes_at;
    if (l2_hit) {
        completes_at = issue_at + h->l2_hit_latency;
        *served = SERVED_L2;
    } else {
        int64_t dram_fill = h->dram_fill_latency;
        completes_at = hier_dram_completion(h, now, dram_fill);
        int64_t floor = issue_at + dram_fill;
        if (floor > completes_at) completes_at = floor;
        *served = SERVED_DRAM;
    }
    *latency = completes_at - now;

    mshr_allocate(&h->l1m, line, issue_at, completes_at);
    if (!l2_hit) mshr_allocate(&h->l2m, line, issue_at, completes_at);
    fheap_push(&h->pending, (Fill){completes_at, line, 0, (uint8_t)!l2_hit});

    int64_t idx = map_get(&h->predicted, line, -1);
    if (idx >= 0 && h->access_index - idx <= h->prediction_window)
        *ac = AC_NON_TIMELY;
    else
        *ac = AC_MISS_NOT_PREFETCHED;
}

/* prefetch of addr at now; returns the outcome's issued flag */
static int hier_prefetch(Hier *h, int64_t addr, int64_t now) {
    if ((h->pending.len && h->pending.a[0].t <= now) || h->backlog_len)
        hier_apply_fills(h, now);
    int64_t line = addr / h->line_bytes;
    int64_t reserve = h->pf_reserve;

    if (cache_contains(&h->l1, line)) {
        h->prefetches_redundant++;
        return 0;  /* resident */
    }
    if (mshr_lookup(&h->pfb, line, now) >= 0 || mshr_lookup(&h->l1m, line, now) >= 0) {
        h->prefetches_redundant++;
        return 0;  /* in-flight */
    }
    for (int i = 0; i < h->backlog_len; i++) {
        if (h->backlog[i] == line) {
            h->prefetches_redundant++;
            return 0;  /* queued-already */
        }
    }
    if (mshr_available(&h->pfb, now) > reserve) {
        int r = hier_try_issue(h, line, now);
        if (r == TRY_ISSUED) return 1;
        if (r == TRY_RESIDENT_L2) return 0;
    }
    if (h->backlog_len < h->backlog_depth) {
        h->backlog[h->backlog_len++] = line;
        hier_note_unissued(h, line);
        return 1;  /* queued: PrefetchOutcome(True, "queued") */
    }
    h->prefetches_rejected_mshr++;
    return 0;  /* mshr-pressure */
}

/* ------------------------------------------------------------------ */
/* interval core model */

typedef struct {
    double cursor, last_completion, max_completion, rob_floor;
    int64_t inst_pos;
    int64_t issue_width, rob_size, lq_size;
    double *lq;
    int lq_head, lq_len;
    double *rob_c;
    int64_t *rob_i;
    size_t rob_head, rob_len, rob_cap;  /* ring; cap power of two */
    int64_t stall_cycles, instructions, memory_accesses, cycles;
} Core;

static int core_init(Core *c, int64_t issue_width, int64_t rob_size, int64_t lq_size) {
    memset(c, 0, sizeof(*c));
    c->issue_width = issue_width;
    c->rob_size = rob_size;
    c->lq_size = lq_size;
    c->lq = (double *)malloc((size_t)lq_size * sizeof(double));
    c->rob_cap = 256;
    while (c->rob_cap < (size_t)rob_size + 2) c->rob_cap *= 2;
    c->rob_c = (double *)malloc(c->rob_cap * sizeof(double));
    c->rob_i = (int64_t *)malloc(c->rob_cap * sizeof(int64_t));
    return c->lq && c->rob_c && c->rob_i;
}

static void core_free(Core *c) {
    free(c->lq); free(c->rob_c); free(c->rob_i);
    c->lq = 0; c->rob_c = 0; c->rob_i = 0;
}

static int core_rob_push(Core *c, double completion, int64_t inst_pos) {
    if (c->rob_len == c->rob_cap) {
        size_t ncap = c->rob_cap * 2;
        double *nc = (double *)malloc(ncap * sizeof(double));
        int64_t *ni = (int64_t *)malloc(ncap * sizeof(int64_t));
        if (!nc || !ni) { free(nc); free(ni); return 0; }
        for (size_t i = 0; i < c->rob_len; i++) {
            size_t s = (c->rob_head + i) & (c->rob_cap - 1);
            nc[i] = c->rob_c[s]; ni[i] = c->rob_i[s];
        }
        free(c->rob_c); free(c->rob_i);
        c->rob_c = nc; c->rob_i = ni; c->rob_cap = ncap; c->rob_head = 0;
    }
    size_t s = (c->rob_head + c->rob_len) & (c->rob_cap - 1);
    c->rob_c[s] = completion; c->rob_i[s] = inst_pos;
    c->rob_len++;
    return 1;
}
"""

# --- context prefetcher: CPython-exact RNG -----------------------------
# drift: begin native-context-rng
SOURCE_CTX_RNG = r"""
/* ------------------------------------------------------------------ */
/* CPython random.Random, bit for bit: the MT19937 generator seeded via
 * init_by_array (the key is the little-endian uint32 decomposition of
 * abs(seed), computed on the Python side), genrand_res53 for random(),
 * getrandbits-based _randbelow for choice(), and the cumulative-weights
 * bisect of choices(k=1).  Every helper consumes exactly the draws the
 * CPython method would, including rejection-loop retries. */

#include <math.h>

typedef struct RpRng {
    uint32_t mt[624];
    int mti;
} RpRng;

static void mt_init_genrand(RpRng *r, uint32_t s) {
    r->mt[0] = s;
    for (int i = 1; i < 624; i++)
        r->mt[i] = (uint32_t)(1812433253u * (r->mt[i - 1] ^ (r->mt[i - 1] >> 30))
                              + (uint32_t)i);
    r->mti = 624;
}

static void mt_init_by_array(RpRng *r, const uint32_t *key, int key_len) {
    mt_init_genrand(r, 19650218u);
    int i = 1, j = 0;
    int k = 624 > key_len ? 624 : key_len;
    for (; k; k--) {
        r->mt[i] = (r->mt[i] ^ ((r->mt[i - 1] ^ (r->mt[i - 1] >> 30)) * 1664525u))
                   + key[j] + (uint32_t)j;
        i++; j++;
        if (i >= 624) { r->mt[0] = r->mt[623]; i = 1; }
        if (j >= key_len) j = 0;
    }
    for (k = 623; k; k--) {
        r->mt[i] = (r->mt[i] ^ ((r->mt[i - 1] ^ (r->mt[i - 1] >> 30)) * 1566083941u))
                   - (uint32_t)i;
        i++;
        if (i >= 624) { r->mt[0] = r->mt[623]; i = 1; }
    }
    r->mt[0] = 0x80000000u;
    r->mti = 624;
}

static uint32_t mt_genrand(RpRng *r) {
    static const uint32_t mag01[2] = {0u, 0x9908b0dfu};
    uint32_t y;
    if (r->mti >= 624) {
        int kk;
        for (kk = 0; kk < 624 - 397; kk++) {
            y = (r->mt[kk] & 0x80000000u) | (r->mt[kk + 1] & 0x7fffffffu);
            r->mt[kk] = r->mt[kk + 397] ^ (y >> 1) ^ mag01[y & 1u];
        }
        for (; kk < 623; kk++) {
            y = (r->mt[kk] & 0x80000000u) | (r->mt[kk + 1] & 0x7fffffffu);
            r->mt[kk] = r->mt[kk + (397 - 624)] ^ (y >> 1) ^ mag01[y & 1u];
        }
        y = (r->mt[623] & 0x80000000u) | (r->mt[0] & 0x7fffffffu);
        r->mt[623] = r->mt[396] ^ (y >> 1) ^ mag01[y & 1u];
        r->mti = 0;
    }
    y = r->mt[r->mti++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

/* Random.random() == genrand_res53 */
static double mt_random(RpRng *r) {
    uint32_t a = mt_genrand(r) >> 5, b = mt_genrand(r) >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

/* Random.getrandbits(k), k in 1..32 (one word; the only sizes used) */
static uint32_t mt_getrandbits(RpRng *r, int k) {
    return mt_genrand(r) >> (32 - k);
}

/* Random._randbelow_with_getrandbits(n), n >= 1: rejection-sample
 * k = n.bit_length() bits until the draw is < n (n == 1 still draws). */
static int64_t mt_randbelow(RpRng *r, int64_t n) {
    int k = 0;
    int64_t v = n;
    while (v) { k++; v >>= 1; }
    uint32_t draw = mt_getrandbits(r, k);
    while ((int64_t)draw >= n) draw = mt_getrandbits(r, k);
    return (int64_t)draw;
}

/* Random.choices(pop, weights)[0] index: cum = accumulate(weights),
 * total = cum[-1] + 0.0, one random() draw, bisect_right(cum, x, 0, n-1). */
static int64_t mt_choices_index_cum(RpRng *r, const double *cum, int64_t n) {
    double total = cum[n - 1] + 0.0;
    double x = mt_random(r) * total;
    int64_t lo = 0, hi = n - 1;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (x < cum[mid]) hi = mid; else lo = mid + 1;
    }
    return lo;
}

/* ---- exported reference-vector hooks (test suite only) ---- */

RpRng *rp_rng_new(const uint32_t *key, int key_len) {
    RpRng *r = (RpRng *)malloc(sizeof(RpRng));
    if (!r) return 0;
    mt_init_by_array(r, key, key_len);
    return r;
}

void rp_rng_free(RpRng *r) { free(r); }

double rp_rng_random(RpRng *r) { return mt_random(r); }

uint32_t rp_rng_getrandbits(RpRng *r, int k) { return mt_getrandbits(r, k); }

int64_t rp_rng_choice_index(RpRng *r, int64_t n) { return mt_randbelow(r, n); }

int64_t rp_rng_choices_index(RpRng *r, const double *weights, int64_t n) {
    double *cum = (double *)malloc((size_t)n * sizeof(double));
    if (!cum) return -1;
    cum[0] = weights[0];
    for (int64_t i = 1; i < n; i++) cum[i] = cum[i - 1] + weights[i];
    int64_t idx = mt_choices_index_cum(r, cum, n);
    free(cum);
    return idx;
}
"""
# drift: end native-context-rng

# --- context prefetcher: CPython-exact hashing + rounding --------------
# drift: begin native-context-hash
SOURCE_CTX_HASH = r"""
/* ------------------------------------------------------------------ */
/* CPython hash pipeline for the context keys: long_hash (modulo 2**61-1
 * with the negative-branch -1 -> -2 rule), the xxHash-based tuple hash
 * of 64-bit CPython, and the golden-ratio finalizer from context.py.
 * Plus float.__round__'s half-to-even for the bell reward. */

#define PYHASH_MOD 0x1FFFFFFFFFFFFFFFULL  /* 2**61 - 1 */

/* hash(v) for v >= 0 interpreted as an unsigned 64-bit int */
static int64_t pyhash_u64(uint64_t v) {
    return (int64_t)(v % PYHASH_MOD);
}

/* hash(v) for signed v: hash(|v|) negated for v < 0; -1 becomes -2 */
static int64_t pyhash_i64(int64_t v) {
    if (v >= 0) return (int64_t)(((uint64_t)v) % PYHASH_MOD);
    uint64_t uv = (uint64_t)(-(v + 1)) + 1u;   /* |v|, INT64_MIN-safe */
    int64_t h = -(int64_t)(uv % PYHASH_MOD);
    if (h == -1) h = -2;
    return h;
}

/* CPython tuplehash (xxHash variant), item hashes precomputed */
static int64_t pyhash_tuple(const int64_t *item_hashes, int64_t n) {
    uint64_t acc = 2870177450012600261ULL;              /* XXPRIME_5 */
    for (int64_t i = 0; i < n; i++) {
        uint64_t lane = (uint64_t)item_hashes[i];
        acc += lane * 14029467366897019727ULL;          /* XXPRIME_2 */
        acc = (acc << 31) | (acc >> 33);
        acc *= 11400714785074694791ULL;                 /* XXPRIME_1 */
    }
    acc += ((uint64_t)n) ^ (2870177450012600261ULL ^ 3527539ULL);
    if (acc == (uint64_t)-1) acc = 1546275796ULL;
    return (int64_t)acc;
}

/* context.py finalizer: key = (h * golden) & MASK64; key ^= key >> 29.
 * The signed-to-unsigned cast reproduces Python's masked big-int product. */
static uint64_t ctx_finalize(int64_t h) {
    uint64_t key = (uint64_t)h * 0x9E3779B97F4A7C15ULL;
    key ^= key >> 29;
    return key;
}

/* round(x) -> int, CPython float.__round__: nearest, ties to even */
static int64_t py_round_i64(double x) {
    double rounded = round(x);
    if (fabs(x - rounded) == 0.5)
        rounded = 2.0 * round(x / 2.0);
    return (int64_t)rounded;
}

/* Attribute-value signedness: LAST_VALUE (4) and REG_VALUE (6) are the
 * two signed attributes; everything else hashes as an unsigned pattern. */
static const uint8_t CTX_SIGNED_ATTR[8] = {0, 0, 0, 0, 1, 0, 1, 0};

/* hash((bits, *values[gathered ascending])) + finalize, unmasked */
static uint64_t ctx_hash_bits(const int64_t *vals, int bits) {
    int64_t lanes[9];
    int n = 0;
    lanes[n++] = (int64_t)bits;   /* hash(small nonneg int) == itself */
    for (int i = 0; i < 8; i++) {
        if (!((bits >> i) & 1)) continue;
        lanes[n++] = CTX_SIGNED_ATTR[i] ? pyhash_i64(vals[i])
                                        : pyhash_u64((uint64_t)vals[i]);
    }
    return ctx_finalize(pyhash_tuple(lanes, n));
}

/* ---- exported reference-vector hooks (test suite only) ---- */

int64_t rp_hash_uint(uint64_t v) { return pyhash_u64(v); }

int64_t rp_hash_int(int64_t v) { return pyhash_i64(v); }

int64_t rp_hash_tuple(const int64_t *item_hashes, int64_t n) {
    return pyhash_tuple(item_hashes, n);
}

/* full unmasked context key for an 8-value vector + active bitmap */
int64_t rp_ctx_key(const int64_t *values, int active_bits) {
    return (int64_t)ctx_hash_bits(values, active_bits);
}
"""
# drift: end native-context-hash

# --- context prefetcher: state + capture -------------------------------
# drift: begin native-context-state
SOURCE_CTX_STATE = r"""
/* ------------------------------------------------------------------ */
/* Context RL prefetcher state: a flat-array port of ContextPrefetcher
 * and its CST / reducer / history / prefetch-queue components.  Every
 * sequential state machine mirrors the interpreted oracle statement for
 * statement; candidate identity is the CST slot index (the interpreted
 * path compares Candidate objects with `is`, and slots are objects). */

#define PF_CONTEXT 5
#define CTX_ICFG_FIXED 42
#define CTX_DCFG_FIXED 6

typedef struct {
    uint64_t reduced;
    int64_t delta;
    int64_t depth;
    int expired;
} FbEvent;

typedef struct Ctx {
    /* geometry */
    int cst_entries, cst_links, cst_index_bits;
    uint64_t cst_index_mask, cst_tag_mask;
    int r_entries, r_index_bits;
    uint64_t r_index_mask, r_tag_mask;
    uint64_t full_mask, reduced_mask;
    int hist_cap;
    int64_t q_cap;
    int64_t block_bytes, granularity;
    int64_t delta_min, delta_max;
    /* reward config geometry + live window */
    int64_t cfg_lo, cfg_hi, cfg_center;
    int64_t peak, late_pen, early_pen;
    int reward_flat;
    int64_t rw_lo, rw_hi, rw_center;
    double rw_denom;
    /* scores / bandit policy */
    int64_t score_min, score_max, initial_score, replace_threshold, score_threshold;
    int max_degree;
    int policy_softmax, adaptive_eps, shadow_on;
    double eps_min, eps_range, fixed_eps, alpha, shadow_p, softmax_temp;
    int n_thresholds;
    double *thresholds;
    /* reducer adaptation */
    int alloc_active_bits, initial_popcount;
    int adaptive_reduction;
    int64_t overload_refs, overload_period, underload_lookups;
    /* adaptive reward window */
    int adaptive_window;
    int64_t window_update_period, center_lo_bound, center_hi_bound;
    /* collection + capture */
    int n_sample_depths;
    int64_t *sample_depths;
    int addr_depth;
    int64_t *recent;
    int n_recent;
    int64_t vals[8];
    uint64_t memo_key[256];
    uint8_t memo_has[256];
    int memo_list[16];
    int memo_n;
    /* RNG + EMAs */
    RpRng rng;
    double accuracy_ema, depth_ema;
    /* CST flat arrays (per entry; candidates entry-major) */
    uint8_t *cst_used;
    int64_t *cst_tag;
    int64_t *cst_ptr;
    int32_t *cst_ncand;
    int64_t *cst_delta;
    int64_t *cst_score;
    /* reducer flat arrays */
    uint8_t *r_used, *r_haskey;
    int32_t *r_active;
    int64_t *r_tag, *r_lookups, *r_lookadapt;
    uint64_t *r_cstkey;
    /* history ring (count monotonic, ring wraps) */
    int64_t *h_reduced, *h_block, *h_line, *h_index;
    int64_t h_count;
    int h_pos;
    /* prefetch queue: slot pool + FIFO ring + per-target chain buckets */
    int64_t *q_red, *q_delta, *q_target, *q_issue;
    uint8_t *q_hit;
    int32_t *q_bnext;
    int32_t *q_fifo;
    size_t q_fifo_cap;  /* power of two */
    size_t q_head;
    int64_t q_len;
    int32_t *q_freelist;
    int q_nfree;
    Map by_block;       /* target_line -> head slot of bucket chain */
    FbEvent *events;    /* match/expiry scratch */
    /* selection scratch */
    int *ranked, *sel_real, *sel_shadow, *pool;
    double *weights, *cum;
    /* hit-depth histogram, Counter-insertion-ordered for the goldens */
    Map hist_map;       /* depth -> slot in hg arrays */
    int64_t *hg_depth, *hg_count;
    int64_t hg_len, hg_cap;
    int oom;
    /* counters mirrored from the interpreted components */
    int64_t explorations, exploitations;
    int64_t predictions_real, predictions_shadow;
    int64_t rewards_applied, window_updates, feedback_events;
    int64_t cst_assoc_added, cst_assoc_rej_full, cst_conflicts, cst_occ;
    int64_t r_allocs, r_conflicts, r_activations, r_deactivations, r_occ;
    int64_t q_hits, q_expirations;
} Ctx;

static int popcount8(int v) {
    int c = 0;
    while (v) { c += v & 1; v >>= 1; }
    return c;
}

/* ContextTracker.capture: splitmix fold over the OLD recent blocks,
 * fill the 8-value vector, then append the block (bounded deque), and
 * invalidate the per-access hash memo. */
static void ctx_capture(Ctx *cx, uint64_t pc, int64_t type_id, int64_t link_offset,
                        int64_t ref_form, int64_t last_value, uint64_t branch_hist,
                        int64_t reg_value, int64_t block) {
    uint64_t hfold = 0;
    for (int i = 0; i < cx->n_recent; i++) {
        uint64_t state = hfold + (uint64_t)cx->recent[i] + 0x9E3779B97F4A7C15ULL;
        state ^= state >> 30;
        state *= 0xBF58476D1CE4E5B9ULL;
        state ^= state >> 27;
        state *= 0x94D049BB133111EBULL;
        hfold = state ^ (state >> 31);
    }
    cx->vals[0] = (int64_t)pc;        /* IP */
    cx->vals[1] = type_id;            /* TYPE_ID */
    cx->vals[2] = link_offset;        /* LINK_OFFSET */
    cx->vals[3] = ref_form;           /* REF_FORM */
    cx->vals[4] = last_value;         /* LAST_VALUE (signed) */
    cx->vals[5] = (int64_t)branch_hist;  /* BRANCH_HISTORY */
    cx->vals[6] = reg_value;          /* REG_VALUE (signed) */
    cx->vals[7] = (int64_t)hfold;     /* ADDR_HISTORY */
    if (cx->addr_depth > 0) {
        if (cx->n_recent == cx->addr_depth) {
            for (int i = 1; i < cx->n_recent; i++) cx->recent[i - 1] = cx->recent[i];
            cx->recent[cx->n_recent - 1] = block;
        } else {
            cx->recent[cx->n_recent++] = block;
        }
    }
    for (int i = 0; i < cx->memo_n; i++) cx->memo_has[cx->memo_list[i]] = 0;
    cx->memo_n = 0;
}

/* ContextCapture.hash memo: unmasked finalized key per active bitmap,
 * cleared every capture; callers apply their own bit masks. */
static uint64_t ctx_capture_key(Ctx *cx, int bits) {
    if (cx->memo_has[bits]) return cx->memo_key[bits];
    uint64_t key = ctx_hash_bits(cx->vals, bits);
    if (cx->memo_n < 16) {
        cx->memo_key[bits] = key;
        cx->memo_has[bits] = 1;
        cx->memo_list[cx->memo_n++] = bits;
    }
    return key;
}
"""
# drift: end native-context-state

# --- context prefetcher: reward window ---------------------------------
# drift: begin native-context-reward
SOURCE_CTX_REWARD = r"""
/* ------------------------------------------------------------------ */
/* RewardFunction / FlatRewardFunction.  The bell shape recomputes
 * sigma/denom from the live window geometry exactly as __post_init__
 * (float divide by sqrt(2*log(peak)), denom = 2*pow(sigma, 2)); the
 * adapter gates bell configs with peak == 1 (interpreted path raises
 * ZeroDivisionError at evaluation time, so the kernel never sees it). */

static void ctx_set_reward(Ctx *cx, int64_t lo, int64_t hi, int64_t center) {
    cx->rw_lo = lo; cx->rw_hi = hi; cx->rw_center = center;
    if (!cx->reward_flat && cx->peak > 1) {
        int64_t half_lo = center - lo, half_hi = hi - center;
        int64_t half = half_lo > half_hi ? half_lo : half_hi;
        double sigma = (double)half / sqrt(2.0 * log((double)cx->peak));
        cx->rw_denom = 2.0 * pow(sigma, 2.0);
    }
}

/* reward for a non-expired feedback depth */
static int64_t ctx_reward(const Ctx *cx, int64_t depth) {
    if (depth < cx->rw_lo) return cx->late_pen;
    if (depth > cx->rw_hi) return cx->early_pen;
    if (cx->reward_flat) {
        int64_t r = cx->peak / 2;   /* peak >= 1, so // matches / */
        return r < 1 ? 1 : r;
    }
    double d = (double)(depth - cx->rw_center);
    int64_t rwd = py_round_i64((double)cx->peak * exp(-(d * d) / cx->rw_denom));
    return rwd < 1 ? 1 : rwd;
}

/* ContextPrefetcher._recenter_window: clamp the depth EMA into the
 * configured center bounds with Python's min/max tie semantics, keep
 * the ORIGINAL config's half-widths, cap hi at the queue capacity. */
static void ctx_recenter(Ctx *cx) {
    int64_t lo_b = cx->center_lo_bound, hi_b = cx->center_hi_bound;
    double ema = cx->depth_ema;
    int64_t center;
    if (ema > (double)lo_b) {
        if (ema < (double)hi_b) center = py_round_i64(ema);
        else center = hi_b;
    } else {
        center = lo_b < hi_b ? lo_b : hi_b;
    }
    if (center == cx->rw_center) return;
    int64_t half_lo = cx->cfg_center - cx->cfg_lo;
    int64_t half_hi = cx->cfg_hi - cx->cfg_center;
    int64_t hi = center + half_hi;
    if (hi > cx->q_cap) hi = cx->q_cap;
    int64_t lo = center - half_lo;
    if (lo < 1) lo = 1;
    ctx_set_reward(cx, lo, hi, center < hi ? center : hi);
    cx->window_updates++;
}
"""
# drift: end native-context-reward

# --- context prefetcher: CST -------------------------------------------
# drift: begin native-context-cst
SOURCE_CTX_CST = r"""
/* ------------------------------------------------------------------ */
/* ContextStatesTable on flat arrays.  A slot "for update" reproduces
 * _entry_for_update / the inlined collection insert: tag mismatch or
 * empty slot allocates a fresh entry (counting the conflict eviction),
 * wiping candidates and the pointer count. */

static int64_t cst_slot_for_update(Ctx *cx, uint64_t rh) {
    int64_t idx = (int64_t)(rh & cx->cst_index_mask);
    int64_t tag = (int64_t)((rh >> cx->cst_index_bits) & cx->cst_tag_mask);
    if (cx->cst_used[idx]) {
        if (cx->cst_tag[idx] == tag) return idx;
        cx->cst_conflicts++;
    } else {
        cx->cst_occ++;
        cx->cst_used[idx] = 1;
    }
    cx->cst_tag[idx] = tag;
    cx->cst_ptr[idx] = 0;
    cx->cst_ncand[idx] = 0;
    return idx;
}

/* lookup without mutation: slot index, or -1 on miss/tag mismatch */
static int64_t cst_find_slot(const Ctx *cx, uint64_t rh) {
    int64_t idx = (int64_t)(rh & cx->cst_index_mask);
    if (!cx->cst_used[idx]) return -1;
    int64_t tag = (int64_t)((rh >> cx->cst_index_bits) & cx->cst_tag_mask);
    return cx->cst_tag[idx] == tag ? idx : -1;
}

/* add_association: dedup on delta, append when room, else replace the
 * FIRST minimum-score victim iff its score <= replace_threshold. */
static void cst_add_assoc(Ctx *cx, uint64_t rh, int64_t delta) {
    int64_t e = cst_slot_for_update(cx, rh);
    int64_t base = e * cx->cst_links;
    int n = cx->cst_ncand[e];
    for (int i = 0; i < n; i++)
        if (cx->cst_delta[base + i] == delta) return;
    if (n < cx->cst_links) {
        cx->cst_delta[base + n] = delta;
        cx->cst_score[base + n] = cx->initial_score;
        cx->cst_ncand[e] = n + 1;
        cx->cst_assoc_added++;
        return;
    }
    int vi = 0;
    int64_t vscore = cx->cst_score[base];
    for (int i = 1; i < n; i++)
        if (cx->cst_score[base + i] < vscore) { vscore = cx->cst_score[base + i]; vi = i; }
    if (vscore <= cx->replace_threshold) {
        cx->cst_delta[base + vi] = delta;
        cx->cst_score[base + vi] = cx->initial_score;
        cx->cst_assoc_added++;
    } else {
        cx->cst_assoc_rej_full++;
    }
}

static void cst_add_pointer(Ctx *cx, uint64_t rh) {
    cx->cst_ptr[cst_slot_for_update(cx, rh)]++;
}

static void cst_remove_pointer(Ctx *cx, uint64_t rh) {
    int64_t idx = (int64_t)(rh & cx->cst_index_mask);
    if (!cx->cst_used[idx]) return;
    int64_t tag = (int64_t)((rh >> cx->cst_index_bits) & cx->cst_tag_mask);
    if (cx->cst_tag[idx] == tag && cx->cst_ptr[idx] > 0) cx->cst_ptr[idx]--;
}
"""
# drift: end native-context-cst

# --- context prefetcher: feedback --------------------------------------
# drift: begin native-context-feedback
SOURCE_CTX_FEEDBACK = r"""
/* ------------------------------------------------------------------ */
/* ContextPrefetcher._apply_feedback + the hit-depth histogram.  The
 * histogram preserves Counter first-insertion order (the interpreted
 * result iterates .items() and the goldens byte-compare that order),
 * so it lives in parallel depth/count arrays keyed by a map. */

static void hist_add(Ctx *cx, int64_t depth) {
    int64_t slot = map_get(&cx->hist_map, depth, -1);
    if (slot >= 0) { cx->hg_count[slot]++; return; }
    if (cx->hg_len == cx->hg_cap) {
        int64_t ncap = cx->hg_cap * 2;
        int64_t *nd = (int64_t *)realloc(cx->hg_depth, (size_t)ncap * sizeof(int64_t));
        int64_t *nc = (int64_t *)realloc(cx->hg_count, (size_t)ncap * sizeof(int64_t));
        if (nd) cx->hg_depth = nd;
        if (nc) cx->hg_count = nc;
        if (!nd || !nc) { cx->oom = 1; return; }
        cx->hg_cap = ncap;
    }
    cx->hg_depth[cx->hg_len] = depth;
    cx->hg_count[cx->hg_len] = 1;
    if (!map_set(&cx->hist_map, depth, cx->hg_len)) { cx->oom = 1; return; }
    cx->hg_len++;
}

static void ctx_apply_feedback(Ctx *cx, const FbEvent *ev, int n) {
    for (int i = 0; i < n; i++) {
        int64_t depth = ev[i].depth;
        int64_t reward;
        int hit;
        if (ev[i].expired || depth < 0) {
            reward = cx->early_pen;   /* expiry penalty == early, both shapes */
            hit = 0;
        } else {
            reward = ctx_reward(cx, depth);
            hist_add(cx, depth);
            hit = reward > 0;
            cx->depth_ema += 0.005 * ((double)depth - cx->depth_ema);
        }
        cx->accuracy_ema += cx->alpha * ((double)hit - cx->accuracy_ema);
        int64_t e = cst_find_slot(cx, ev[i].reduced);
        if (e >= 0) {
            int64_t base = e * cx->cst_links;
            int nc = cx->cst_ncand[e];
            for (int c = 0; c < nc; c++) {
                if (cx->cst_delta[base + c] != ev[i].delta) continue;
                int64_t score = cx->cst_score[base + c] + reward;
                if (score > cx->score_max) score = cx->score_max;
                else if (score < cx->score_min) score = cx->score_min;
                cx->cst_score[base + c] = score;
                cx->rewards_applied++;
                break;
            }
        }
    }
    cx->feedback_events += n;
    if (cx->adaptive_window && cx->feedback_events >= cx->window_update_period) {
        cx->feedback_events = 0;
        ctx_recenter(cx);
    }
}
"""
# drift: end native-context-feedback

# --- context prefetcher: reducer ---------------------------------------
# drift: begin native-context-reducer
SOURCE_CTX_REDUCER = r"""
/* ------------------------------------------------------------------ */
/* Reducer.adapt: overload activates the lowest clear attribute bit,
 * underload deactivates the highest set non-IP bit; any change rehashes
 * the reduced key and migrates the CST pointer. */

static uint64_t ctx_adapt(Ctx *cx, int64_t ri, uint64_t reduced) {
    cx->r_lookadapt[ri] = cx->r_lookups[ri];
    int64_t ce = cst_find_slot(cx, reduced);
    int active = cx->r_active[ri];
    int new_active = active;
    if (ce >= 0 && cx->cst_ptr[ce] >= cx->overload_refs) {
        for (int b = 0; b < 8; b++)
            if (!((active >> b) & 1)) { new_active = active | (1 << b); break; }
        if (new_active != active) { cx->r_active[ri] = (int32_t)new_active; cx->r_activations++; }
    } else if (ce >= 0 && cx->cst_ptr[ce] <= 1
               && cx->r_lookups[ri] >= cx->underload_lookups) {
        int any_pos = 0;
        int64_t base = ce * cx->cst_links;
        int nc = cx->cst_ncand[ce];
        for (int c = 0; c < nc; c++)
            if (cx->cst_score[base + c] > 0) { any_pos = 1; break; }
        if (!any_pos && popcount8(active) > cx->initial_popcount) {
            for (int b = 7; b >= 1; b--)   /* never drop IP (bit 0) */
                if ((active >> b) & 1) { new_active = active & ~(1 << b); break; }
            if (new_active != active) { cx->r_active[ri] = (int32_t)new_active; cx->r_deactivations++; }
        }
    }
    if (new_active == active) return reduced;
    uint64_t nk = ctx_capture_key(cx, new_active) & cx->reduced_mask;
    if (cx->r_haskey[ri]) cst_remove_pointer(cx, cx->r_cstkey[ri]);
    cst_add_pointer(cx, nk);
    cx->r_cstkey[ri] = nk;
    cx->r_haskey[ri] = 1;
    return nk;
}
"""
# drift: end native-context-reducer

# --- context prefetcher: epsilon-greedy selection ----------------------
# drift: begin native-context-select
SOURCE_CTX_SELECT = r"""
/* ------------------------------------------------------------------ */
/* EpsilonGreedyPolicy.select (the inlined on_access fast path).  Draw
 * order is load-bearing: the epsilon random() ALWAYS fires when the
 * candidate list is non-empty, an exploration adds one choice() draw,
 * then the shadow random() fires iff shadow prefetching is on.  The
 * single-candidate special case skips the sort and degree math. */

static void ctx_select_egreedy(Ctx *cx, int64_t ce, int *n_real, int *n_shadow) {
    int64_t base = ce * cx->cst_links;
    int nc = cx->cst_ncand[ce];
    int *ranked = cx->ranked;
    int nr, nsel = 0, nsh = 0;
    double ema = cx->accuracy_ema;
    if (nc == 1) {
        ranked[0] = 0;
        nr = 1;
        if (cx->cst_score[base] >= cx->score_threshold) cx->sel_real[nsel++] = 0;
    } else {
        /* stable descending sort on score (insertion sort, strict <) */
        for (int i = 0; i < nc; i++) {
            int64_t sc = cx->cst_score[base + i];
            int j = i;
            while (j > 0 && cx->cst_score[base + ranked[j - 1]] < sc) {
                ranked[j] = ranked[j - 1];
                j--;
            }
            ranked[j] = i;
        }
        nr = nc;
        int level = 1;
        for (int t = 0; t < cx->n_thresholds; t++)
            if (ema >= cx->thresholds[t]) level++;
        if (level > cx->max_degree) level = cx->max_degree;
        for (int i = 0; i < level && i < nr; i++)
            if (cx->cst_score[base + ranked[i]] >= cx->score_threshold)
                cx->sel_real[nsel++] = ranked[i];
    }
    double eps = cx->adaptive_eps ? cx->eps_min + cx->eps_range * (1.0 - ema)
                                  : cx->fixed_eps;
    if (mt_random(&cx->rng) < eps) {
        int choice = ranked[mt_randbelow(&cx->rng, nr)];
        cx->explorations++;
        int present = 0;
        for (int i = 0; i < nsel; i++)
            if (cx->sel_real[i] == choice) { present = 1; break; }
        if (!present) cx->sel_real[nsel++] = choice;
    } else {
        cx->exploitations++;
    }
    if (cx->shadow_on && mt_random(&cx->rng) < cx->shadow_p) {
        int choice = ranked[mt_randbelow(&cx->rng, nr)];
        int present = 0;
        for (int i = 0; i < nsel; i++)
            if (cx->sel_real[i] == choice) { present = 1; break; }
        if (!present) cx->sel_shadow[nsh++] = choice;
    }
    *n_real = nsel;
    *n_shadow = nsh;
}
"""
# drift: end native-context-select

# --- context prefetcher: softmax selection -----------------------------
# drift: begin native-context-softmax
SOURCE_CTX_SOFTMAX = r"""
/* ------------------------------------------------------------------ */
/* SoftmaxPolicy.select: degree computed once, then per pick a fresh
 * pool of not-yet-chosen candidates in rank order, temperature scaled
 * by the accuracy EMA, weights exp((score-top)/tau) accumulated the
 * way random.choices builds cum_weights, ONE random() per pick. */

static void ctx_select_softmax(Ctx *cx, int64_t ce, int *n_real, int *n_shadow) {
    int64_t base = ce * cx->cst_links;
    int nc = cx->cst_ncand[ce];
    int *ranked = cx->ranked;
    for (int i = 0; i < nc; i++) {
        int64_t sc = cx->cst_score[base + i];
        int j = i;
        while (j > 0 && cx->cst_score[base + ranked[j - 1]] < sc) {
            ranked[j] = ranked[j - 1];
            j--;
        }
        ranked[j] = i;
    }
    int nr = nc;   /* on_access gates the empty case before any draw */
    double ema = cx->accuracy_ema;
    int level = 1;
    for (int t = 0; t < cx->n_thresholds; t++)
        if (ema >= cx->thresholds[t]) level++;
    if (level > cx->max_degree) level = cx->max_degree;
    int nsel = 0, nsh = 0;
    for (int d = 0; d < level; d++) {
        int np = 0;
        for (int i = 0; i < nr; i++) {
            int c = ranked[i];
            int chosen = 0;
            for (int s = 0; s < nsel; s++)
                if (cx->sel_real[s] == c) { chosen = 1; break; }
            if (!chosen) cx->pool[np++] = c;
        }
        if (!np) break;
        double tau = cx->softmax_temp * (1.0 - 0.75 * cx->accuracy_ema);
        int64_t top = cx->cst_score[base + cx->pool[0]];
        for (int i = 1; i < np; i++) {
            int64_t sc = cx->cst_score[base + cx->pool[i]];
            if (sc > top) top = sc;
        }
        for (int i = 0; i < np; i++)
            cx->weights[i] = exp((double)(cx->cst_score[base + cx->pool[i]] - top) / tau);
        cx->cum[0] = cx->weights[0];
        for (int i = 1; i < np; i++) cx->cum[i] = cx->cum[i - 1] + cx->weights[i];
        int choice = cx->pool[mt_choices_index_cum(&cx->rng, cx->cum, np)];
        if (choice == ranked[0]) cx->exploitations++; else cx->explorations++;
        cx->sel_real[nsel++] = choice;
    }
    if (cx->shadow_on && mt_random(&cx->rng) < cx->shadow_p) {
        int choice = ranked[mt_randbelow(&cx->rng, nr)];
        int present = 0;
        for (int i = 0; i < nsel; i++)
            if (cx->sel_real[i] == choice) { present = 1; break; }
        if (!present) cx->sel_shadow[nsh++] = choice;
    }
    *n_real = nsel;
    *n_shadow = nsh;
}
"""
# drift: end native-context-softmax

# --- context prefetcher: queue + access loop ---------------------------
# drift: begin native-context-kernel
SOURCE_CTX_ACCESS = r"""
/* ------------------------------------------------------------------ */
/* PrefetchQueue + ContextPrefetcher.on_access.  Buckets are singly
 * linked slot chains headed in the by_block map; the interpreted
 * invariant (a present bucket is non-empty and all-unhit) makes the
 * map-presence probe and identity-based removal exact. */

static void q_bucket_remove(Ctx *cx, int slot) {
    size_t ms = map_find(&cx->by_block, cx->q_target[slot]);
    if (ms == (size_t)-1) return;   /* bucket already popped by match */
    int head = (int)cx->by_block.vals[ms];
    if (head == slot) {
        if (cx->q_bnext[slot] >= 0) cx->by_block.vals[ms] = cx->q_bnext[slot];
        else map_del_slot(&cx->by_block, ms);
        return;
    }
    int prev = head, cur = cx->q_bnext[head];
    while (cur >= 0) {
        if (cur == slot) { cx->q_bnext[prev] = cx->q_bnext[cur]; return; }
        prev = cur;
        cur = cx->q_bnext[cur];
    }
}

/* push + FIFO overflow: the evicted entry leaves its bucket, and an
 * unhit eviction applies a single expiry feedback event MID push loop,
 * exactly as the interpreted queue.push. */
static void q_push_entry(Ctx *cx, uint64_t reduced, int64_t delta,
                         int64_t target, int64_t issue_index) {
    int slot = cx->q_freelist[--cx->q_nfree];
    cx->q_red[slot] = (int64_t)reduced;
    cx->q_delta[slot] = delta;
    cx->q_target[slot] = target;
    cx->q_issue[slot] = issue_index;
    cx->q_hit[slot] = 0;
    cx->q_bnext[slot] = -1;
    cx->q_fifo[(cx->q_head + (size_t)cx->q_len) & (cx->q_fifo_cap - 1)] = slot;
    cx->q_len++;
    size_t ms = map_find(&cx->by_block, target);
    if (ms == (size_t)-1) {
        if (!map_set(&cx->by_block, target, slot)) { cx->oom = 1; return; }
    } else {
        int cur = (int)cx->by_block.vals[ms];
        while (cx->q_bnext[cur] >= 0) cur = cx->q_bnext[cur];
        cx->q_bnext[cur] = slot;
    }
    if (cx->q_len > cx->q_cap) {
        int ev = cx->q_fifo[cx->q_head & (cx->q_fifo_cap - 1)];
        cx->q_head++;
        cx->q_len--;
        q_bucket_remove(cx, ev);
        int was_hit = cx->q_hit[ev];
        FbEvent e;
        e.reduced = (uint64_t)cx->q_red[ev];
        e.delta = cx->q_delta[ev];
        e.depth = cx->q_cap;
        e.expired = 1;
        cx->q_freelist[cx->q_nfree++] = ev;
        if (!was_hit) {
            cx->q_expirations++;
            ctx_apply_feedback(cx, &e, 1);
        }
    }
}

/* PrefetchQueue.match: pop the whole bucket, mark hits, emit feedback
 * events in bucket (issue) order. */
static int ctx_q_match(Ctx *cx, int64_t block, int64_t index) {
    int cur = (int)map_pop(&cx->by_block, block, -1);
    if (cur < 0) return 0;
    int n = 0;
    int64_t hits = 0;
    while (cur >= 0) {
        if (!cx->q_hit[cur]) {
            cx->q_hit[cur] = 1;
            hits++;
            cx->events[n].reduced = (uint64_t)cx->q_red[cur];
            cx->events[n].delta = cx->q_delta[cur];
            cx->events[n].depth = index - cx->q_issue[cur];
            cx->events[n].expired = 0;
            n++;
        }
        cur = cx->q_bnext[cur];
    }
    cx->q_hits += hits;
    return n;
}

/* ContextPrefetcher.on_access: capture -> feedback -> collection ->
 * reduction -> prediction -> history push, statement for statement.
 * Emits request line addresses + shadow flags; returns the count. */
static int ctx_on_access(Ctx *cx, int64_t index, uint64_t uaddr, uint64_t pc,
                         int64_t type_id, int64_t link_offset, int64_t ref_form,
                         int64_t last_value, uint64_t branch_hist, int64_t reg_value,
                         int64_t *req_addr, uint8_t *req_shadow) {
    int64_t block = (int64_t)(uaddr / (uint64_t)cx->block_bytes);
    int64_t line = (int64_t)(uaddr / (uint64_t)cx->granularity);
    ctx_capture(cx, pc, type_id, link_offset, ref_form, last_value,
                branch_hist, reg_value, block);
    if (map_find(&cx->by_block, line) != (size_t)-1) {
        int nev = ctx_q_match(cx, line, index);
        ctx_apply_feedback(cx, cx->events, nev);
    }
    int64_t count = cx->h_count;
    int pos = cx->h_pos;
    if (count) {
        for (int i = 0; i < cx->n_sample_depths; i++) {
            int64_t depth = cx->sample_depths[i];
            if (depth > count) break;
            int ridx = pos - (int)depth;
            if (ridx < 0) ridx += cx->hist_cap;
            int64_t delta = line - cx->h_line[ridx];
            if (delta && cx->delta_min <= delta && delta <= cx->delta_max)
                cst_add_assoc(cx, (uint64_t)cx->h_reduced[ridx], delta);
        }
    }
    uint64_t key = ctx_capture_key(cx, 255);
    uint64_t full_hash = key & cx->full_mask;
    int64_t ri = (int64_t)(full_hash & cx->r_index_mask);
    int64_t rtag = (int64_t)((full_hash >> cx->r_index_bits) & cx->r_tag_mask);
    if (!cx->r_used[ri] || cx->r_tag[ri] != rtag) {
        if (cx->r_used[ri]) {
            cx->r_conflicts++;
            if (cx->r_haskey[ri]) cst_remove_pointer(cx, cx->r_cstkey[ri]);
        } else {
            cx->r_occ++;
            cx->r_used[ri] = 1;
        }
        cx->r_tag[ri] = rtag;
        cx->r_active[ri] = (int32_t)cx->alloc_active_bits;
        cx->r_haskey[ri] = 0;
        cx->r_lookups[ri] = 0;
        cx->r_lookadapt[ri] = 0;
        cx->r_allocs++;
    }
    cx->r_lookups[ri]++;
    int active_bits = cx->r_active[ri];
    uint64_t reduced_key = active_bits == 255 ? key : ctx_capture_key(cx, active_bits);
    uint64_t reduced = reduced_key & cx->reduced_mask;
    if (!cx->r_haskey[ri] || cx->r_cstkey[ri] != reduced) {
        if (cx->r_haskey[ri]) cst_remove_pointer(cx, cx->r_cstkey[ri]);
        cst_add_pointer(cx, reduced);
        cx->r_cstkey[ri] = reduced;
        cx->r_haskey[ri] = 1;
    }
    if (cx->adaptive_reduction
        && cx->r_lookups[ri] - cx->r_lookadapt[ri] >= cx->overload_period)
        reduced = ctx_adapt(cx, ri, reduced);
    int nreq = 0;
    int64_t ce = cst_find_slot(cx, reduced);
    if (ce >= 0 && cx->cst_ncand[ce] > 0) {
        int n_real, n_shadow;
        if (cx->policy_softmax) ctx_select_softmax(cx, ce, &n_real, &n_shadow);
        else ctx_select_egreedy(cx, ce, &n_real, &n_shadow);
        int64_t base = ce * cx->cst_links;
        for (int i = 0; i < n_real; i++) {
            int64_t delta = cx->cst_delta[base + cx->sel_real[i]];
            int64_t target = line + delta;
            if (target < 0) continue;
            int shadow = map_find(&cx->by_block, target) != (size_t)-1;
            q_push_entry(cx, reduced, delta, target, index);
            if (shadow) cx->predictions_shadow++; else cx->predictions_real++;
            req_addr[nreq] = target * cx->granularity;
            req_shadow[nreq] = (uint8_t)shadow;
            nreq++;
        }
        for (int i = 0; i < n_shadow; i++) {
            int64_t delta = cx->cst_delta[base + cx->sel_shadow[i]];
            int64_t target = line + delta;
            if (target < 0) continue;
            q_push_entry(cx, reduced, delta, target, index);
            cx->predictions_shadow++;
            req_addr[nreq] = target * cx->granularity;
            req_shadow[nreq] = 1;
            nreq++;
        }
    }
    cx->h_reduced[pos] = (int64_t)reduced;
    cx->h_block[pos] = block;
    cx->h_line[pos] = line;
    cx->h_index[pos] = index;
    cx->h_count = count + 1;
    cx->h_pos = pos + 1 == cx->hist_cap ? 0 : pos + 1;
    return nreq;
}

static uint64_t ctx_mask_of(int bits) {
    return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

static int ctx_bits_of(int64_t v) {
    int b = 0;
    while (v) { b++; v >>= 1; }
    return b;
}

static void ctx_free(Ctx *cx) {
    free(cx->thresholds); free(cx->sample_depths); free(cx->recent);
    free(cx->cst_used); free(cx->cst_tag); free(cx->cst_ptr);
    free(cx->cst_ncand); free(cx->cst_delta); free(cx->cst_score);
    free(cx->r_used); free(cx->r_haskey); free(cx->r_active);
    free(cx->r_tag); free(cx->r_lookups); free(cx->r_lookadapt); free(cx->r_cstkey);
    free(cx->h_reduced); free(cx->h_block); free(cx->h_line); free(cx->h_index);
    free(cx->q_red); free(cx->q_delta); free(cx->q_target); free(cx->q_issue);
    free(cx->q_hit); free(cx->q_bnext); free(cx->q_fifo); free(cx->q_freelist);
    map_free(&cx->by_block);
    free(cx->events);
    free(cx->ranked); free(cx->sel_real); free(cx->sel_shadow); free(cx->pool);
    free(cx->weights); free(cx->cum);
    map_free(&cx->hist_map);
    free(cx->hg_depth); free(cx->hg_count);
}

static int ctx_init(Ctx *cx, const int64_t *ic, const double *dc,
                    const uint32_t *seed_key, int seed_len) {
    memset(cx, 0, sizeof(Ctx));
    cx->cst_entries = (int)ic[0];
    cx->cst_links = (int)ic[1];
    cx->cst_index_bits = ctx_bits_of(ic[0] - 1);
    cx->cst_index_mask = ctx_mask_of(cx->cst_index_bits);
    cx->cst_tag_mask = ctx_mask_of((int)ic[2]);
    cx->r_entries = (int)ic[3];
    cx->r_index_bits = ctx_bits_of(ic[3] - 1);
    cx->r_index_mask = ctx_mask_of(cx->r_index_bits);
    cx->r_tag_mask = ctx_mask_of((int)ic[4]);
    cx->full_mask = ctx_mask_of((int)ic[5]);
    cx->reduced_mask = ctx_mask_of((int)ic[6]);
    cx->hist_cap = (int)ic[7];
    cx->q_cap = ic[8];
    cx->block_bytes = ic[9];
    cx->granularity = ic[10];
    cx->delta_min = ic[11];
    cx->delta_max = ic[12];
    cx->cfg_lo = ic[13];
    cx->cfg_hi = ic[14];
    cx->cfg_center = ic[15];
    cx->peak = ic[16];
    cx->late_pen = ic[17];
    cx->early_pen = ic[18];
    cx->score_min = ic[19];
    cx->score_max = ic[20];
    cx->initial_score = ic[21];
    cx->replace_threshold = ic[22];
    cx->score_threshold = ic[23];
    cx->max_degree = (int)ic[24];
    cx->alloc_active_bits = (int)ic[25];
    cx->initial_popcount = (int)ic[26];
    cx->overload_refs = ic[27];
    cx->overload_period = ic[28];
    cx->underload_lookups = ic[29];
    cx->adaptive_reduction = (int)ic[30];
    cx->shadow_on = (int)ic[31];
    cx->adaptive_eps = (int)ic[32];
    cx->reward_flat = (int)ic[33];
    cx->policy_softmax = (int)ic[34];
    cx->adaptive_window = (int)ic[35];
    cx->window_update_period = ic[36];
    cx->center_lo_bound = ic[37];
    cx->center_hi_bound = ic[38];
    cx->addr_depth = (int)ic[39];
    cx->n_sample_depths = (int)ic[40];
    cx->n_thresholds = (int)ic[41];
    cx->eps_min = dc[0];
    cx->eps_range = dc[1];
    cx->fixed_eps = dc[2];
    cx->alpha = dc[3];
    cx->shadow_p = dc[4];
    cx->softmax_temp = dc[5];
    mt_init_by_array(&cx->rng, seed_key, seed_len);
    cx->accuracy_ema = 0.0;
    cx->depth_ema = (double)cx->cfg_center;
    ctx_set_reward(cx, cx->cfg_lo, cx->cfg_hi, cx->cfg_center);
    int ne = cx->cst_entries, nl = cx->cst_links, nre = cx->r_entries;
    int nh = cx->hist_cap;
    int npool = (int)cx->q_cap + 2;
    size_t fc = 8;
    while (fc < (size_t)(cx->q_cap + 2)) fc <<= 1;
    cx->q_fifo_cap = fc;
    cx->thresholds = (double *)malloc((size_t)(cx->n_thresholds > 0 ? cx->n_thresholds : 1) * sizeof(double));
    cx->sample_depths = (int64_t *)malloc((size_t)(cx->n_sample_depths > 0 ? cx->n_sample_depths : 1) * sizeof(int64_t));
    cx->recent = (int64_t *)malloc((size_t)(cx->addr_depth > 0 ? cx->addr_depth : 1) * sizeof(int64_t));
    cx->cst_used = (uint8_t *)calloc((size_t)ne, 1);
    cx->cst_tag = (int64_t *)malloc((size_t)ne * sizeof(int64_t));
    cx->cst_ptr = (int64_t *)malloc((size_t)ne * sizeof(int64_t));
    cx->cst_ncand = (int32_t *)malloc((size_t)ne * sizeof(int32_t));
    cx->cst_delta = (int64_t *)malloc((size_t)ne * (size_t)nl * sizeof(int64_t));
    cx->cst_score = (int64_t *)malloc((size_t)ne * (size_t)nl * sizeof(int64_t));
    cx->r_used = (uint8_t *)calloc((size_t)nre, 1);
    cx->r_haskey = (uint8_t *)calloc((size_t)nre, 1);
    cx->r_active = (int32_t *)malloc((size_t)nre * sizeof(int32_t));
    cx->r_tag = (int64_t *)malloc((size_t)nre * sizeof(int64_t));
    cx->r_lookups = (int64_t *)malloc((size_t)nre * sizeof(int64_t));
    cx->r_lookadapt = (int64_t *)malloc((size_t)nre * sizeof(int64_t));
    cx->r_cstkey = (uint64_t *)malloc((size_t)nre * sizeof(uint64_t));
    cx->h_reduced = (int64_t *)malloc((size_t)nh * sizeof(int64_t));
    cx->h_block = (int64_t *)malloc((size_t)nh * sizeof(int64_t));
    cx->h_line = (int64_t *)malloc((size_t)nh * sizeof(int64_t));
    cx->h_index = (int64_t *)malloc((size_t)nh * sizeof(int64_t));
    cx->q_red = (int64_t *)malloc((size_t)npool * sizeof(int64_t));
    cx->q_delta = (int64_t *)malloc((size_t)npool * sizeof(int64_t));
    cx->q_target = (int64_t *)malloc((size_t)npool * sizeof(int64_t));
    cx->q_issue = (int64_t *)malloc((size_t)npool * sizeof(int64_t));
    cx->q_hit = (uint8_t *)calloc((size_t)npool, 1);
    cx->q_bnext = (int32_t *)malloc((size_t)npool * sizeof(int32_t));
    cx->q_fifo = (int32_t *)malloc(fc * sizeof(int32_t));
    cx->q_freelist = (int32_t *)malloc((size_t)npool * sizeof(int32_t));
    cx->events = (FbEvent *)malloc((size_t)npool * sizeof(FbEvent));
    cx->ranked = (int *)malloc((size_t)(nl + 2) * sizeof(int));
    cx->sel_real = (int *)malloc((size_t)(nl + 2) * sizeof(int));
    cx->sel_shadow = (int *)malloc((size_t)(nl + 2) * sizeof(int));
    cx->pool = (int *)malloc((size_t)(nl + 2) * sizeof(int));
    cx->weights = (double *)malloc((size_t)(nl + 2) * sizeof(double));
    cx->cum = (double *)malloc((size_t)(nl + 2) * sizeof(double));
    cx->hg_cap = 128;
    cx->hg_depth = (int64_t *)malloc((size_t)cx->hg_cap * sizeof(int64_t));
    cx->hg_count = (int64_t *)malloc((size_t)cx->hg_cap * sizeof(int64_t));
    int maps_ok = map_init(&cx->by_block, 256) && map_init(&cx->hist_map, 256);
    if (!maps_ok || !cx->thresholds || !cx->sample_depths || !cx->recent
        || !cx->cst_used || !cx->cst_tag || !cx->cst_ptr || !cx->cst_ncand
        || !cx->cst_delta || !cx->cst_score
        || !cx->r_used || !cx->r_haskey || !cx->r_active || !cx->r_tag
        || !cx->r_lookups || !cx->r_lookadapt || !cx->r_cstkey
        || !cx->h_reduced || !cx->h_block || !cx->h_line || !cx->h_index
        || !cx->q_red || !cx->q_delta || !cx->q_target || !cx->q_issue
        || !cx->q_hit || !cx->q_bnext || !cx->q_fifo || !cx->q_freelist
        || !cx->events || !cx->ranked || !cx->sel_real || !cx->sel_shadow
        || !cx->pool || !cx->weights || !cx->cum
        || !cx->hg_depth || !cx->hg_count) {
        ctx_free(cx);
        return 0;
    }
    for (int i = 0; i < cx->n_thresholds; i++) cx->thresholds[i] = dc[CTX_DCFG_FIXED + i];
    for (int i = 0; i < cx->n_sample_depths; i++) cx->sample_depths[i] = ic[CTX_ICFG_FIXED + i];
    for (int i = 0; i < npool; i++) cx->q_freelist[i] = npool - 1 - i;
    cx->q_nfree = npool;
    return 1;
}
"""
# drift: end native-context-kernel

SOURCE_PF = r"""
/* ------------------------------------------------------------------ */
/* prefetchers.  Request buffer: every family emits at most 64 requests
 * per access (degree <= 64, SMS lines_per_region <= 64 — enforced on
 * the Python side before a config is handed to the kernel). */

#define MAX_REQS 64

#define PF_NONE 0
#define PF_STRIDE 1
#define PF_GHB 2
#define PF_SMS 3
#define PF_MARKOV 4

/* ---- stride: direct-mapped RPT with 2-bit confidence ---- */

typedef struct {
    uint64_t tag;
    int64_t last_addr;
    int64_t stride;
    int state;
    uint8_t used;
} SEntry;

typedef struct {
    int64_t table_entries, degree, line_bytes;
    uint8_t train_on_miss_only;
    SEntry *table;
} Stride;

/* ---- GHB with delta correlation; ordered index table (insertion
 * order, assignment keeps position, FIFO eviction of the oldest key
 * when the table overflows — exactly dict semantics) ---- */

typedef struct {
    int64_t key;
    int64_t val;
    int prev, next;
    uint8_t used;
} OmNode;

typedef struct {
    OmNode *nodes;
    int cap;         /* number of node slots */
    int head, tail;  /* insertion-order list, -1 when empty */
    int free_head;   /* free list via .next */
    int count;
    Map slots;       /* key -> node index */
} OrderedMap;

static int om_init(OrderedMap *o, int cap) {
    o->cap = cap;
    o->head = o->tail = -1;
    o->count = 0;
    o->nodes = (OmNode *)calloc((size_t)cap, sizeof(OmNode));
    if (!o->nodes) return 0;
    for (int i = 0; i < cap; i++) o->nodes[i].next = i + 1 < cap ? i + 1 : -1;
    o->free_head = 0;
    size_t mcap = 16;
    while (mcap < (size_t)cap * 2) mcap *= 2;
    return map_init(&o->slots, mcap);
}

static void om_free(OrderedMap *o) {
    free(o->nodes); o->nodes = 0;
    map_free(&o->slots);
}

static int om_node_of(OrderedMap *o, int64_t key) {
    return (int)map_get(&o->slots, key, -1);
}

/* dict assignment: update in place when present, else append */
static void om_set(OrderedMap *o, int64_t key, int64_t val) {
    int n = om_node_of(o, key);
    if (n >= 0) { o->nodes[n].val = val; return; }
    n = o->free_head;
    o->free_head = o->nodes[n].next;
    OmNode *node = &o->nodes[n];
    node->key = key; node->val = val; node->used = 1;
    node->prev = o->tail; node->next = -1;
    if (o->tail >= 0) o->nodes[o->tail].next = n; else o->head = n;
    o->tail = n;
    o->count++;
    map_set(&o->slots, key, n);
}

static void om_unlink(OrderedMap *o, int n) {
    OmNode *node = &o->nodes[n];
    if (node->prev >= 0) o->nodes[node->prev].next = node->next; else o->head = node->next;
    if (node->next >= 0) o->nodes[node->next].prev = node->prev; else o->tail = node->prev;
    node->used = 0;
    node->next = o->free_head;
    o->free_head = n;
    o->count--;
    map_del(&o->slots, node->key);
}

static void om_evict_oldest(OrderedMap *o) {
    if (o->head >= 0) om_unlink(o, o->head);
}

typedef struct {
    int64_t ghb_entries, index_entries, match_length, degree, max_walk, line_bytes;
    uint8_t localization_pc;
    uint8_t train_on_miss_only;
    int64_t *buf_addr;
    int64_t *buf_link;
    uint8_t *buf_used;
    int64_t next_seq;
    OrderedMap index;
    int64_t *stream;   /* scratch, max_walk */
    int64_t *deltas;   /* scratch, max_walk */
} Ghb;

/* ---- SMS: insertion-ordered filter/AGT arrays + PHT ---- */

typedef struct {
    int64_t region;
    uint64_t trigger_pc;
    int64_t trigger_offset;
    uint64_t pattern;
    int64_t last_touch;
} Gen;

typedef struct {
    int64_t region_bytes, line_bytes, filter_entries, agt_entries, pht_entries;
    int64_t timeout, lines_per_region;
    Gen *filt;
    int filt_len;
    Gen *agt;
    int agt_len;
    uint64_t *pht;     /* 0 == absent: committed patterns have >= 2 bits */
    int64_t *stale;    /* scratch */
} Sms;

static int64_t sms_pht_index(Sms *s, uint64_t pc, int64_t offset) {
    unsigned __int128 x =
        (unsigned __int128)pc * 0x9E3779B1ULL + (unsigned __int128)(uint64_t)offset;
    return (int64_t)(uint64_t)(x % (unsigned __int128)(uint64_t)s->pht_entries);
}

static void sms_end_generation(Sms *s, Gen *g) {
    if (__builtin_popcountll(g->pattern) >= 2)
        s->pht[sms_pht_index(s, g->trigger_pc, g->trigger_offset)] = g->pattern;
}

static int sms_find(Gen *arr, int len, int64_t region) {
    for (int i = 0; i < len; i++) {
        if (arr[i].region == region) return i;
    }
    return -1;
}

static Gen sms_remove(Gen *arr, int *len, int i) {
    Gen g = arr[i];
    memmove(arr + i, arr + i + 1, (size_t)(*len - 1 - i) * sizeof(Gen));
    (*len)--;
    return g;
}

static void sms_expire_stale(Sms *s, int64_t now_index) {
    int nstale = 0;
    for (int i = 0; i < s->agt_len; i++) {
        if (now_index - s->agt[i].last_touch > s->timeout) s->stale[nstale++] = s->agt[i].region;
    }
    for (int k = 0; k < nstale; k++) {
        int i = sms_find(s->agt, s->agt_len, s->stale[k]);
        Gen g = sms_remove(s->agt, &s->agt_len, i);
        sms_end_generation(s, &g);
    }
    nstale = 0;
    for (int i = 0; i < s->filt_len; i++) {
        if (now_index - s->filt[i].last_touch > s->timeout) s->stale[nstale++] = s->filt[i].region;
    }
    for (int k = 0; k < nstale; k++) {
        int i = sms_find(s->filt, s->filt_len, s->stale[k]);
        sms_remove(s->filt, &s->filt_len, i);
    }
}

/* ---- Markov: LRU-ordered state table with per-state successor lists ---- */

typedef struct {
    int64_t table_entries, max_succ, degree, line_bytes;
    uint8_t train_on_miss_only;
    OrderedMap table;    /* line -> slot in succ arrays (node index) */
    int64_t *succ_line;  /* cap * max_succ */
    int64_t *succ_count;
    int *nsucc;          /* per node */
    int64_t last_line;
    uint8_t has_last;
} Markov;

static void markov_move_to_end(OrderedMap *o, int n) {
    if (o->tail == n) return;
    OmNode *node = &o->nodes[n];
    if (node->prev >= 0) o->nodes[node->prev].next = node->next; else o->head = node->next;
    if (node->next >= 0) o->nodes[node->next].prev = node->prev;
    node->prev = o->tail;
    node->next = -1;
    o->nodes[o->tail].next = n;
    o->tail = n;
}

/* ---- dispatch ---- */

typedef struct RpPf {
    int kind;
    Stride stride;
    Ghb ghb;
    Sms sms;
    Markov markov;
    Ctx ctx;
} RpPf;

static int pf_on_access(RpPf *pf, int64_t index, uint64_t uaddr, uint64_t pc,
                        int primary_miss, int64_t *reqs) {
    int n = 0;
    switch (pf->kind) {
    case PF_NONE:
        break;
    case PF_STRIDE: {
        Stride *st = &pf->stride;
        if (st->train_on_miss_only && !primary_miss) break;
        int64_t addr = (int64_t)(uaddr / (uint64_t)st->line_bytes) * st->line_bytes;
        int64_t idx = (int64_t)(pc % (uint64_t)st->table_entries);
        uint64_t tag = pc / (uint64_t)st->table_entries;
        SEntry *e = &st->table[idx];
        if (!e->used || e->tag != tag) {
            e->tag = tag; e->last_addr = addr; e->stride = 0; e->state = 0; e->used = 1;
            break;
        }
        int64_t stride = addr - e->last_addr;
        if (stride == e->stride && stride != 0) {
            e->state = e->state + 1 < 2 ? e->state + 1 : 2;
        } else if (stride != 0) {
            e->stride = stride;
            e->state = 1;
        } else {
            e->state = 0;
        }
        e->last_addr = addr;
        if (e->state < 2 || e->stride == 0) break;
        for (int64_t k = 1; k <= st->degree; k++) {
            int64_t target = addr + e->stride * k;
            if (target > 0) reqs[n++] = target;
        }
        break;
    }
    case PF_GHB: {
        Ghb *g = &pf->ghb;
        if (g->train_on_miss_only && !primary_miss) break;
        int64_t addr = (int64_t)(uaddr / (uint64_t)g->line_bytes) * g->line_bytes;
        int64_t key = g->localization_pc ? (int64_t)pc : 0;
        int node = om_node_of(&g->index, key);
        int64_t prev_seq = node >= 0 ? g->index.nodes[node].val : -1;
        if (prev_seq < 0 || prev_seq < g->next_seq - g->ghb_entries
            || !g->buf_used[prev_seq % g->ghb_entries])
            prev_seq = -1;
        int64_t seq = g->next_seq;
        int64_t slot = seq % g->ghb_entries;
        g->buf_addr[slot] = addr;
        g->buf_link[slot] = prev_seq;
        g->buf_used[slot] = 1;
        om_set(&g->index, key, seq);
        if (g->index.count > g->index_entries) om_evict_oldest(&g->index);
        g->next_seq++;

        int slen = 0;
        int64_t s = seq;
        int64_t oldest_valid = g->next_seq - g->ghb_entries;
        if (oldest_valid < 0) oldest_valid = 0;
        while (s >= oldest_valid && slen < g->max_walk) {
            int64_t bs = s % g->ghb_entries;
            if (!g->buf_used[bs]) break;
            g->stream[slen++] = g->buf_addr[bs];
            s = g->buf_link[bs];
        }
        int64_t m = g->match_length;
        if (slen < m + 2) break;
        int nd = slen - 1;
        for (int i = 0; i < nd; i++) g->deltas[i] = g->stream[i] - g->stream[i + 1];
        int64_t match_at = -1;
        for (int start = 1; start <= nd - (int)m; start++) {
            int ok = 1;
            for (int j = 0; j < (int)m; j++) {
                if (g->deltas[start + j] != g->deltas[j]) { ok = 0; break; }
            }
            if (ok) { match_at = start; break; }
        }
        if (match_at <= 0) break;
        int64_t target = addr;
        for (int64_t step = 1; step <= g->degree; step++) {
            int64_t idx = match_at - step;
            int64_t delta;
            if (idx >= 0) delta = g->deltas[idx];
            else delta = g->deltas[((idx % m) + m) % m];  /* pattern[idx % m], Python modulo */
            target += delta;
            if (target > 0) reqs[n++] = target;
        }
        break;
    }
    case PF_SMS: {
        Sms *s = &pf->sms;
        int64_t region = (int64_t)(uaddr / (uint64_t)s->region_bytes);
        int64_t offset = (int64_t)((uaddr % (uint64_t)s->region_bytes) / (uint64_t)s->line_bytes);
        sms_expire_stale(s, index);

        int i = sms_find(s->agt, s->agt_len, region);
        if (i >= 0) {
            Gen g = s->agt[i];
            g.pattern |= 1ULL << offset;
            g.last_touch = index;
            sms_remove(s->agt, &s->agt_len, i);  /* move_to_end */
            s->agt[s->agt_len++] = g;
            break;
        }
        i = sms_find(s->filt, s->filt_len, region);
        if (i >= 0) {
            s->filt[i].last_touch = index;
            if (!(s->filt[i].pattern & (1ULL << offset))) {
                Gen g = sms_remove(s->filt, &s->filt_len, i);
                g.pattern |= 1ULL << offset;
                s->agt[s->agt_len++] = g;
                if (s->agt_len > s->agt_entries) {
                    Gen ev = sms_remove(s->agt, &s->agt_len, 0);
                    sms_end_generation(s, &ev);
                }
            }
            break;
        }
        Gen ng;
        ng.region = region;
        ng.trigger_pc = pc;
        ng.trigger_offset = offset;
        ng.pattern = 1ULL << offset;
        ng.last_touch = index;
        s->filt[s->filt_len++] = ng;
        if (s->filt_len > s->filter_entries) sms_remove(s->filt, &s->filt_len, 0);

        uint64_t pattern = s->pht[sms_pht_index(s, pc, offset)];
        if (pattern == 0) break;
        int64_t base = region * s->region_bytes;
        for (int64_t line = 0; line < s->lines_per_region; line++) {
            if ((pattern & (1ULL << line)) && line != offset)
                reqs[n++] = base + line * s->line_bytes;
        }
        break;
    }
    case PF_MARKOV: {
        Markov *mk = &pf->markov;
        if (mk->train_on_miss_only && !primary_miss) break;
        int64_t line = (int64_t)(uaddr / (uint64_t)mk->line_bytes);
        if (mk->has_last && mk->last_line != line) {
            int node = om_node_of(&mk->table, mk->last_line);
            if (node < 0) {
                om_set(&mk->table, mk->last_line, 0);
                node = om_node_of(&mk->table, mk->last_line);
                mk->nsucc[node] = 0;
                if (mk->table.count > mk->table_entries) om_evict_oldest(&mk->table);
            } else {
                markov_move_to_end(&mk->table, node);
            }
            /* observe(line): count bump, or evict the first-minimal successor */
            int64_t *sl = mk->succ_line + (int64_t)node * mk->max_succ;
            int64_t *sc = mk->succ_count + (int64_t)node * mk->max_succ;
            int ns = mk->nsucc[node];
            int found = -1;
            for (int j = 0; j < ns; j++) {
                if (sl[j] == line) { found = j; break; }
            }
            if (found >= 0) {
                sc[found]++;
            } else {
                if (ns >= mk->max_succ) {
                    int victim = 0;
                    for (int j = 1; j < ns; j++) {
                        if (sc[j] < sc[victim]) victim = j;
                    }
                    memmove(sl + victim, sl + victim + 1, (size_t)(ns - 1 - victim) * sizeof(int64_t));
                    memmove(sc + victim, sc + victim + 1, (size_t)(ns - 1 - victim) * sizeof(int64_t));
                    ns--;
                }
                sl[ns] = line;
                sc[ns] = 1;
                ns++;
                mk->nsucc[node] = ns;
            }
        }
        mk->last_line = line;
        mk->has_last = 1;

        int node = om_node_of(&mk->table, line);
        if (node < 0) break;
        markov_move_to_end(&mk->table, node);
        int64_t *sl = mk->succ_line + (int64_t)node * mk->max_succ;
        int64_t *sc = mk->succ_count + (int64_t)node * mk->max_succ;
        int ns = mk->nsucc[node];
        /* stable sort desc by count == repeatedly take the earliest
         * not-yet-taken successor with the strictly largest count */
        uint8_t taken[MAX_REQS];
        memset(taken, 0, sizeof(taken));
        for (int64_t d = 0; d < mk->degree && d < ns; d++) {
            int best = -1;
            for (int j = 0; j < ns; j++) {
                if (!taken[j] && (best < 0 || sc[j] > sc[best])) best = j;
            }
            taken[best] = 1;
            reqs[n++] = sl[best] * mk->line_bytes;
        }
        break;
    }
    }
    return n;
}
"""

SOURCE_RUN = r"""
/* ------------------------------------------------------------------ */
/* simulator API: one RpSim = one Simulator (hierarchy + core + the
 * per-run prediction-depth bookkeeping), one RpPf = one prefetcher.
 * rp_run is Simulator.run without warmup; the adapter composes warmup
 * as run(prefix) + rp_reset_stats + run(remainder), like the Python. */

typedef struct RpSim {
    Hier hier;
    Core core;
    int64_t cycle_base;
    Map predicted_at;   /* per-run: cleared at every rp_run entry */
    Log pred_log;
    uint64_t bhr_value;   /* BranchHistoryRegister, warm across runs */
    uint64_t bhr_mask;
} RpSim;

void rp_sim_free(RpSim *s);
void rp_pf_free(RpPf *p);

RpSim *rp_sim_new(const int64_t *hc, const int64_t *cc) {
    RpSim *s = (RpSim *)calloc(1, sizeof(RpSim));
    if (!s) return 0;
    Hier *h = &s->hier;
    int64_t line_bytes = hc[10];
    h->line_bytes = line_bytes;
    h->l1_latency = hc[2];
    h->l2_hit_latency = hc[2] + hc[6];
    h->dram_fill_latency = hc[2] + hc[6] + hc[8];
    h->service_interval = hc[9];
    h->pf_reserve = hc[12];
    h->backlog_depth = hc[13];
    h->prefetch_fill_l1 = (uint8_t)hc[14];
    int ok = 1;
    ok &= cache_init(&h->l1, hc[0] / (hc[1] * line_bytes), (int)hc[1]);
    ok &= cache_init(&h->l2, hc[4] / (hc[5] * line_bytes), (int)hc[5]);
    ok &= mshr_init(&h->l1m, (int)hc[3]);
    ok &= mshr_init(&h->l2m, (int)hc[7]);
    ok &= mshr_init(&h->pfb, (int)hc[11]);
    ok &= fheap_init(&h->pending, 64);
    h->backlog = (int64_t *)malloc((size_t)(hc[13] > 0 ? hc[13] : 1) * sizeof(int64_t));
    ok &= h->backlog != 0;
    ok &= map_init(&h->predicted, 1024);
    ok &= log_init(&h->pred_log, 512);
    h->prediction_window = 256;
    ok &= core_init(&s->core, cc[0], cc[1], cc[2]);
    s->bhr_value = 0;
    s->bhr_mask = (uint64_t)cc[3];
    ok &= map_init(&s->predicted_at, 1024);
    ok &= log_init(&s->pred_log, 512);
    if (!ok) { rp_sim_free(s); return 0; }
    return s;
}

void rp_sim_free(RpSim *s) {
    if (!s) return;
    Hier *h = &s->hier;
    cache_free(&h->l1); cache_free(&h->l2);
    mshr_free(&h->l1m); mshr_free(&h->l2m); mshr_free(&h->pfb);
    fheap_free(&h->pending);
    free(h->backlog); h->backlog = 0;
    map_free(&h->predicted);
    log_free(&h->pred_log);
    core_free(&s->core);
    map_free(&s->predicted_at);
    log_free(&s->pred_log);
    free(s);
}

/* Simulator._reset_stats: zero the counters, keep the warm state */
void rp_reset_stats(RpSim *s) {
    Core *c = &s->core;
    double m = c->cursor > c->max_completion ? c->cursor : c->max_completion;
    s->cycle_base = (int64_t)m;   /* finalize().cycles */
    Hier *h = &s->hier;
    h->l1_acc = h->l1_hit = h->l1_miss = 0;
    h->l2_acc = h->l2_hit = h->l2_miss = 0;
    h->prefetches_issued = 0;
    h->prefetches_rejected_mshr = 0;
    h->prefetches_redundant = 0;
    h->l1.unused_prefetch_evictions = 0;
    h->l1.used_prefetch_fills = 0;
    c->stall_cycles = c->instructions = c->memory_accesses = c->cycles = 0;
}

RpPf *rp_pf_new(int kind, const int64_t *cfg) {
    RpPf *p = (RpPf *)calloc(1, sizeof(RpPf));
    if (!p) return 0;
    p->kind = kind;
    int ok = 1;
    switch (kind) {
    case PF_NONE:
        break;
    case PF_STRIDE: {
        Stride *st = &p->stride;
        st->table_entries = cfg[0];
        st->degree = cfg[1];
        st->line_bytes = cfg[2];
        st->train_on_miss_only = (uint8_t)cfg[3];
        st->table = (SEntry *)calloc((size_t)st->table_entries, sizeof(SEntry));
        ok &= st->table != 0;
        break;
    }
    case PF_GHB: {
        Ghb *g = &p->ghb;
        g->ghb_entries = cfg[0];
        g->index_entries = cfg[1];
        g->match_length = cfg[2];
        g->degree = cfg[3];
        g->max_walk = cfg[4];
        g->localization_pc = (uint8_t)cfg[5];
        g->line_bytes = cfg[6];
        g->train_on_miss_only = (uint8_t)cfg[7];
        g->buf_addr = (int64_t *)calloc((size_t)g->ghb_entries, sizeof(int64_t));
        g->buf_link = (int64_t *)calloc((size_t)g->ghb_entries, sizeof(int64_t));
        g->buf_used = (uint8_t *)calloc((size_t)g->ghb_entries, 1);
        g->stream = (int64_t *)malloc((size_t)g->max_walk * sizeof(int64_t));
        g->deltas = (int64_t *)malloc((size_t)g->max_walk * sizeof(int64_t));
        ok &= g->buf_addr && g->buf_link && g->buf_used && g->stream && g->deltas;
        ok &= om_init(&g->index, (int)g->index_entries + 1);
        break;
    }
    case PF_SMS: {
        Sms *m = &p->sms;
        m->region_bytes = cfg[0];
        m->line_bytes = cfg[1];
        m->filter_entries = cfg[2];
        m->agt_entries = cfg[3];
        m->pht_entries = cfg[4];
        m->timeout = cfg[5];
        m->lines_per_region = m->region_bytes / m->line_bytes;
        m->filt = (Gen *)calloc((size_t)m->filter_entries + 1, sizeof(Gen));
        m->agt = (Gen *)calloc((size_t)m->agt_entries + 1, sizeof(Gen));
        m->pht = (uint64_t *)calloc((size_t)m->pht_entries, sizeof(uint64_t));
        int64_t scratch = (m->filter_entries > m->agt_entries
                           ? m->filter_entries : m->agt_entries) + 1;
        m->stale = (int64_t *)malloc((size_t)scratch * sizeof(int64_t));
        ok &= m->filt && m->agt && m->pht && m->stale;
        break;
    }
    case PF_MARKOV: {
        Markov *mk = &p->markov;
        mk->table_entries = cfg[0];
        mk->max_succ = cfg[1];
        mk->degree = cfg[2];
        mk->line_bytes = cfg[3];
        mk->train_on_miss_only = (uint8_t)cfg[4];
        ok &= om_init(&mk->table, (int)mk->table_entries + 1);
        size_t slots = (size_t)(mk->table_entries + 1) * (size_t)mk->max_succ;
        mk->succ_line = (int64_t *)calloc(slots, sizeof(int64_t));
        mk->succ_count = (int64_t *)calloc(slots, sizeof(int64_t));
        mk->nsucc = (int *)calloc((size_t)mk->table_entries + 1, sizeof(int));
        ok &= mk->succ_line && mk->succ_count && mk->nsucc;
        break;
    }
    default:
        ok = 0;
    }
    if (!ok) { rp_pf_free(p); return 0; }
    return p;
}

void rp_pf_free(RpPf *p) {
    if (!p) return;
    switch (p->kind) {
    case PF_STRIDE:
        free(p->stride.table);
        break;
    case PF_GHB:
        free(p->ghb.buf_addr); free(p->ghb.buf_link); free(p->ghb.buf_used);
        free(p->ghb.stream); free(p->ghb.deltas);
        om_free(&p->ghb.index);
        break;
    case PF_SMS:
        free(p->sms.filt); free(p->sms.agt); free(p->sms.pht); free(p->sms.stale);
        break;
    case PF_MARKOV:
        om_free(&p->markov.table);
        free(p->markov.succ_line); free(p->markov.succ_count); free(p->markov.nsucc);
        break;
    case PF_CONTEXT:
        ctx_free(&p->ctx);
        break;
    }
    free(p);
}

RpPf *rp_pf_ctx_new(const int64_t *icfg, const double *dcfg,
                    const uint32_t *seed_key, int seed_len) {
    RpPf *p = (RpPf *)calloc(1, sizeof(RpPf));
    if (!p) return 0;
    p->kind = PF_CONTEXT;
    if (!ctx_init(&p->ctx, icfg, dcfg, seed_key, seed_len)) { free(p); return 0; }
    return p;
}

/* Prefetcher.accuracy() == policy._accuracy_ema */
double rp_pf_ctx_accuracy(const RpPf *p) { return p->ctx.accuracy_ema; }

void rp_pf_ctx_counters(const RpPf *p, int64_t *o) {
    const Ctx *cx = &p->ctx;
    o[0] = cx->predictions_real;
    o[1] = cx->predictions_shadow;
    o[2] = cx->rewards_applied;
    o[3] = cx->window_updates;
    o[4] = cx->explorations;
    o[5] = cx->exploitations;
    o[6] = cx->q_hits;
    o[7] = cx->q_expirations;
    o[8] = cx->feedback_events;
    o[9] = cx->cst_assoc_added;
    o[10] = cx->cst_assoc_rej_full;
    o[11] = 0;   /* associations_rejected_range: the inline range gate precedes */
    o[12] = cx->cst_conflicts;
    o[13] = cx->cst_occ;
    o[14] = cx->r_allocs;
    o[15] = cx->r_conflicts;
    o[16] = cx->r_activations;
    o[17] = cx->r_deactivations;
    o[18] = cx->r_occ;
    o[19] = cx->h_count;
}

int64_t rp_pf_ctx_hist_len(const RpPf *p) { return p->ctx.hg_len; }

/* hit-depth histogram in Counter first-insertion order */
void rp_pf_ctx_hist(const RpPf *p, int64_t *depths, int64_t *counts) {
    const Ctx *cx = &p->ctx;
    for (int64_t i = 0; i < cx->hg_len; i++) {
        depths[i] = cx->hg_depth[i];
        counts[i] = cx->hg_count[i];
    }
}

/* out-block layout (OUT_SLOTS int64s):
 *  0 instructions (cumulative core stat, as finalize() reports)
 *  1 cycles, already max(1, cycles - cycle_base)
 *  2..4  l1 accesses/hits/misses    5..7  l2 accesses/hits/misses
 *  8..13 class counts in ACCESS_CLASS_ORDER (wasted prefetches in 13)
 *  14 demand accesses   15 issued real   16 issued shadow
 *  17 rejected (mshr-pressure)   18 redundant
 *  19..147 hit-depth histogram, depth 0..128 */

#define DEPTH_CAP 128

int rp_run(RpSim *s, RpPf *pf, int64_t n, int64_t start_index,
           const uint64_t *addrs, const uint64_t *pcs,
           const uint64_t *lines, const uint32_t *inst_gaps,
           const uint8_t *flags,
           const int64_t *values, const int64_t *reg_values,
           const uint64_t *branch_bits, const uint16_t *branch_counts,
           const uint32_t *type_ids, const uint32_t *link_offsets,
           const uint8_t *ref_forms, int64_t *out) {
    Hier *h = &s->hier;
    Core *c = &s->core;
    Map *predicted_at = &s->predicted_at;
    Log *plog = &s->pred_log;
    map_clear(predicted_at);
    log_clear(plog);

    int64_t depth_counts[DEPTH_CAP + 1];
    memset(depth_counts, 0, sizeof(depth_counts));
    int64_t class_counts[6];
    memset(class_counts, 0, sizeof(class_counts));
    int64_t issued_real = 0, issued_shadow = 0;
    int64_t line_bytes = h->line_bytes;
    int64_t reqs[MAX_REQS];
    uint8_t req_shadow[MAX_REQS];
    int is_ctx = pf->kind == PF_CONTEXT;
    int64_t last_value = 0;   /* Simulator.run local, fresh per call */

    /* core-model state in locals for the loop, written back after —
     * the same arithmetic, in the same order, as the interpreted loop */
    double cursor = c->cursor;
    double last_completion = c->last_completion;
    double max_completion = c->max_completion;
    double rob_floor = c->rob_floor;
    int64_t inst_pos = c->inst_pos;
    int64_t issue_width = c->issue_width;
    int64_t rob_size = c->rob_size;
    int64_t stall_cycles = 0, instructions = 0;

    for (int64_t k = 0; k < n; k++) {
        int64_t index = start_index + k;
        int64_t gap = (int64_t)inst_gaps[k];
        uint64_t uaddr = addrs[k];
        int depends = (flags[k] >> 1) & 1;

        /* BranchHistoryRegister.update_many, oldest outcome first */
        if (is_ctx && branch_counts[k]) {
            uint64_t bb = branch_bits[k];
            int cnt = (int)branch_counts[k];
            for (int b = 0; b < cnt; b++)
                s->bhr_value = ((s->bhr_value << 1) | ((bb >> b) & 1)) & s->bhr_mask;
        }

        /* --- CoreModel.issue_time --- */
        double issue_f = cursor + (double)(gap + 1) / (double)issue_width;
        if (depends && last_completion > issue_f) issue_f = last_completion;
        if (c->lq_len == (int)c->lq_size && c->lq[c->lq_head] > issue_f)
            issue_f = c->lq[c->lq_head];
        if (c->rob_len) {
            int64_t rob_horizon = inst_pos + gap + 1 - rob_size;
            while (c->rob_len && c->rob_i[c->rob_head] <= rob_horizon) {
                double completion = c->rob_c[c->rob_head];
                c->rob_head = (c->rob_head + 1) & (c->rob_cap - 1);
                c->rob_len--;
                if (completion > rob_floor) rob_floor = completion;
            }
        }
        if (rob_floor > issue_f) issue_f = rob_floor;
        int64_t issue = (int64_t)issue_f;

        /* --- Hierarchy.demand_access --- */
        int64_t latency;
        int l1_hit, served, ac;
        hier_demand_access(h, (int64_t)lines[k], issue, &latency, &l1_hit, &served, &ac);
        class_counts[ac]++;

        /* --- CoreModel.complete --- */
        double completion = (double)(issue + latency);
        int64_t insts = gap + 1;
        double stall = (double)issue - (cursor + (double)insts / (double)issue_width);
        if (stall > 0) stall_cycles += (int64_t)stall;
        cursor = (double)issue;
        inst_pos += insts;
        last_completion = completion;
        if (completion > max_completion) max_completion = completion;
        /* lq_ring.append (deque(maxlen=lq_size): drop oldest when full) */
        if (c->lq_len == (int)c->lq_size) {
            c->lq[c->lq_head] = completion;
            c->lq_head = (c->lq_head + 1) % (int)c->lq_size;
        } else {
            c->lq[(c->lq_head + c->lq_len) % (int)c->lq_size] = completion;
            c->lq_len++;
        }
        if (!core_rob_push(c, completion, inst_pos)) return -1;
        instructions += insts;

        /* hit-depth bookkeeping */
        int64_t line = (int64_t)lines[k];
        int64_t prev = map_pop(predicted_at, line, -1);
        if (prev >= 0) {
            int64_t depth = index - prev;
            if (depth <= DEPTH_CAP) depth_counts[depth]++;
        }

        /* --- prefetcher --- */
        int primary_miss = !l1_hit && served != SERVED_MSHR;
        int nreq;
        if (is_ctx) {
            nreq = ctx_on_access(&pf->ctx, index, uaddr, pcs[k],
                                 (int64_t)type_ids[k], (int64_t)link_offsets[k],
                                 (int64_t)ref_forms[k], last_value,
                                 s->bhr_value, reg_values[k],
                                 reqs, req_shadow);
        } else {
            nreq = pf_on_access(pf, index, uaddr, pcs[k], primary_miss, reqs);
        }
        for (int r = 0; r < nreq; r++) {
            int64_t req_addr = reqs[r];
            int64_t pf_line = req_addr / line_bytes;
            if (is_ctx && req_shadow[r]) {
                hier_note_unissued(h, pf_line);
                issued_shadow++;
            } else if (hier_prefetch(h, req_addr, issue)) {
                issued_real++;
            } else {
                /* on_prefetch_issue: a rejected real prediction demotes */
                if (is_ctx) { pf->ctx.predictions_real--; pf->ctx.predictions_shadow++; }
                hier_note_unissued(h, pf_line);
                issued_shadow++;
            }
            prev = map_get(predicted_at, pf_line, -1);
            if (prev < 0 || index - prev > DEPTH_CAP) {
                if (!map_set(predicted_at, pf_line, index)) return -1;
                if (!log_push(plog, index, pf_line)) return -1;
            }
        }
        int64_t cutoff = index - DEPTH_CAP;
        while (plog->len && plog->idx[plog->head] < cutoff) {
            int64_t i, ln;
            log_pop(plog, &i, &ln);
            if (map_get(predicted_at, ln, -1) == i) map_del(predicted_at, ln);
        }
        if (is_ctx && (flags[k] & 1)) last_value = values[k];
    }
    if (is_ctx && pf->ctx.oom) return -1;

    /* write the core state back (Simulator.run's finally block) */
    c->cursor = cursor;
    c->last_completion = last_completion;
    c->max_completion = max_completion;
    c->inst_pos = inst_pos;
    c->rob_floor = rob_floor;
    c->stall_cycles += stall_cycles;
    c->instructions += instructions;
    c->memory_accesses += n;

    /* finalize + drain */
    double m = cursor > max_completion ? cursor : max_completion;
    int64_t cycles = (int64_t)m;
    c->cycles = cycles;
    hier_apply_fills(h, cycles + 10000);
    int64_t wasted = h->l1.unused_prefetch_evictions + cache_resident_unused(&h->l1);

    out[0] = c->instructions;
    int64_t net = cycles - s->cycle_base;
    out[1] = net > 1 ? net : 1;
    out[2] = h->l1_acc; out[3] = h->l1_hit; out[4] = h->l1_miss;
    out[5] = h->l2_acc; out[6] = h->l2_hit; out[7] = h->l2_miss;
    out[8] = class_counts[AC_HIT_PREFETCHED];
    out[9] = class_counts[AC_SHORTER_WAIT];
    out[10] = class_counts[AC_NON_TIMELY];
    out[11] = class_counts[AC_MISS_NOT_PREFETCHED];
    out[12] = class_counts[AC_HIT_OLDER_DEMAND];
    out[13] = wasted;
    out[14] = n;
    out[15] = issued_real;
    out[16] = issued_shadow;
    out[17] = h->prefetches_rejected_mshr;
    out[18] = h->prefetches_redundant;
    for (int d = 0; d <= DEPTH_CAP; d++) out[19 + d] = depth_counts[d];
    return 0;
}
"""

SOURCE_CTX = (
    SOURCE_CTX_RNG
    + SOURCE_CTX_HASH
    + SOURCE_CTX_STATE
    + SOURCE_CTX_REWARD
    + SOURCE_CTX_CST
    + SOURCE_CTX_FEEDBACK
    + SOURCE_CTX_REDUCER
    + SOURCE_CTX_SELECT
    + SOURCE_CTX_SOFTMAX
    + SOURCE_CTX_ACCESS
)

CDEF_BATCH = """
int rp_batch_openmp(void);
int rp_batch_max_threads(void);
int rp_batch_out_slots(void);
int rp_run_batch(int64_t ncells, RpSim **sims, RpPf **pfs,
                 int64_t n, int64_t start_index, int64_t warmup,
                 const uint64_t *addrs, const uint64_t *pcs,
                 const uint64_t *lines, const uint32_t *inst_gaps,
                 const uint8_t *flags,
                 const int64_t *values, const int64_t *reg_values,
                 const uint64_t *branch_bits, const uint16_t *branch_counts,
                 const uint32_t *type_ids, const uint32_t *link_offsets,
                 const uint8_t *ref_forms,
                 int64_t *outs, int32_t *rcs, int nthreads);
"""

SOURCE_BATCH = r"""
/* ------------------------------------------------------------------ */
/* batch driver: execute N independent cells over one shared read-only
 * column set in a single GIL-released call.  Each cell owns its RpSim
 * and RpPf (private mutable state, private MT19937 stream) and writes a
 * private RP_BATCH_OUT_SLOTS block at outs + i * RP_BATCH_OUT_SLOTS, so
 * the per-cell work is pure in everything but cell-local state and the
 * schedule cannot influence results: any thread count, any scheduling
 * order, bit-identical output.  PERF005 pins this translation unit and
 * forbids `static`/`__thread` storage here, so no shared mutable state
 * can creep between cell blocks.  The OpenMP pragma degrades to a plain
 * serial loop when the compiler has no -fopenmp (see build.py). */

#ifdef _OPENMP
#include <omp.h>
#endif

#define RP_BATCH_OUT_SLOTS 148  /* must equal _csrc.OUT_SLOTS; the
                                   adapter asserts rp_batch_out_slots()
                                   against the Python constant */

int rp_batch_openmp(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

int rp_batch_max_threads(void) {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

int rp_batch_out_slots(void) {
    return RP_BATCH_OUT_SLOTS;
}

/* one cell: rp_run with warmup composed exactly like the adapter's
 * single-cell path — run(prefix) + rp_reset_stats + run(remainder) with
 * every non-NULL column advanced by `warmup` elements. */
int rp_batch_cell(RpSim *sim, RpPf *pf, int64_t n, int64_t start_index,
                  int64_t warmup,
                  const uint64_t *addrs, const uint64_t *pcs,
                  const uint64_t *lines, const uint32_t *inst_gaps,
                  const uint8_t *flags,
                  const int64_t *values, const int64_t *reg_values,
                  const uint64_t *branch_bits, const uint16_t *branch_counts,
                  const uint32_t *type_ids, const uint32_t *link_offsets,
                  const uint8_t *ref_forms, int64_t *out) {
    if (warmup > 0) {
        if (warmup >= n) return -3;
        int rc = rp_run(sim, pf, warmup, start_index, addrs, pcs, lines,
                        inst_gaps, flags, values, reg_values, branch_bits,
                        branch_counts, type_ids, link_offsets, ref_forms,
                        out);
        if (rc != 0) return rc;
        rp_reset_stats(sim);
        return rp_run(sim, pf, n - warmup, start_index + warmup,
                      addrs + warmup, pcs + warmup, lines + warmup,
                      inst_gaps + warmup, flags + warmup,
                      values ? values + warmup : 0,
                      reg_values ? reg_values + warmup : 0,
                      branch_bits ? branch_bits + warmup : 0,
                      branch_counts ? branch_counts + warmup : 0,
                      type_ids ? type_ids + warmup : 0,
                      link_offsets ? link_offsets + warmup : 0,
                      ref_forms ? ref_forms + warmup : 0,
                      out);
    }
    return rp_run(sim, pf, n, start_index, addrs, pcs, lines, inst_gaps,
                  flags, values, reg_values, branch_bits, branch_counts,
                  type_ids, link_offsets, ref_forms, out);
}

/* whole shard in one call.  nthreads > 0 pins the team size; 0 takes
 * the OpenMP default.  Per-cell status lands in rcs[i] (0 ok, negative
 * rp_run failure), so one out-of-memory cell degrades alone and never
 * poisons its shard-mates' result blocks.  Returns 0 always: cell
 * failures are per-cell data, not a call failure. */
int rp_run_batch(int64_t ncells, RpSim **sims, RpPf **pfs,
                 int64_t n, int64_t start_index, int64_t warmup,
                 const uint64_t *addrs, const uint64_t *pcs,
                 const uint64_t *lines, const uint32_t *inst_gaps,
                 const uint8_t *flags,
                 const int64_t *values, const int64_t *reg_values,
                 const uint64_t *branch_bits, const uint16_t *branch_counts,
                 const uint32_t *type_ids, const uint32_t *link_offsets,
                 const uint8_t *ref_forms,
                 int64_t *outs, int32_t *rcs, int nthreads) {
#ifdef _OPENMP
    int team = nthreads > 0 ? nthreads : omp_get_max_threads();
    #pragma omp parallel for schedule(dynamic, 1) num_threads(team)
    for (int64_t i = 0; i < ncells; i++) {
        rcs[i] = (int32_t)rp_batch_cell(
            sims[i], pfs[i], n, start_index, warmup, addrs, pcs, lines,
            inst_gaps, flags, values, reg_values, branch_bits,
            branch_counts, type_ids, link_offsets, ref_forms,
            outs + i * RP_BATCH_OUT_SLOTS);
    }
#else
    (void)nthreads;
    for (int64_t i = 0; i < ncells; i++) {
        rcs[i] = (int32_t)rp_batch_cell(
            sims[i], pfs[i], n, start_index, warmup, addrs, pcs, lines,
            inst_gaps, flags, values, reg_values, branch_bits,
            branch_counts, type_ids, link_offsets, ref_forms,
            outs + i * RP_BATCH_OUT_SLOTS);
    }
#endif
    return 0;
}
"""

#: full cdef handed to ``ffi.cdef``
CDEF = CDEF_CORE + CDEF_BATCH

#: full translation unit handed to cffi's ``set_source``
SOURCE = (
    SOURCE_RUNTIME + SOURCE_MEMORY + SOURCE_CTX + SOURCE_PF + SOURCE_RUN
    + SOURCE_BATCH
)
