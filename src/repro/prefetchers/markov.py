"""Markov prefetcher (Joseph & Grunwald, ISCA 1997).

Discussed in the paper's related work (Section 3): the memory access
stream is modelled as a Markov process whose states are miss addresses;
each state keeps the most likely successor addresses, and a miss
prefetches its predicted successors.  The paper's critique — the model
"does not use other context information, which greatly limits its
scalability to predict diverging paths" — is directly observable here:
the Markov table keys on the address alone, so a node reached from two
different traversals cannot disambiguate its successor.

Implemented as a bounded first-order Markov table over the L1 miss
stream at cache-line granularity, with per-state LRU successor lists and
frequency counts (the classic design).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


@dataclass(slots=True)
class MarkovConfig:
    table_entries: int = 2048
    successors_per_entry: int = 4
    degree: int = 2
    line_bytes: int = 64
    train_on_miss_only: bool = True


@dataclass(slots=True)
class _State:
    #: successor line -> observation count
    successors: dict[int, int] = field(default_factory=dict)

    def observe(self, line: int, max_successors: int) -> None:
        if line in self.successors:
            self.successors[line] += 1
            return
        if len(self.successors) >= max_successors:
            victim = min(self.successors, key=self.successors.get)
            del self.successors[victim]
        self.successors[line] = 1

    def predict(self, count: int) -> list[int]:
        ranked = sorted(self.successors, key=self.successors.get, reverse=True)
        return ranked[:count]


class MarkovPrefetcher(Prefetcher):
    """First-order Markov predictor over the miss-address stream."""

    name = "markov"

    __slots__ = ("config", "_table", "_last_line")

    def __init__(self, config: MarkovConfig | None = None):
        self.config = config or MarkovConfig()
        self._table: OrderedDict[int, _State] = OrderedDict()
        self._last_line: int | None = None

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        cfg = self.config
        if cfg.train_on_miss_only and not access.primary_miss:
            return []
        line = access.addr // cfg.line_bytes

        # train: record the transition from the previous miss
        if self._last_line is not None and self._last_line != line:
            state = self._table.get(self._last_line)
            if state is None:
                state = _State()
                self._table[self._last_line] = state
                if len(self._table) > cfg.table_entries:
                    self._table.popitem(last=False)
            else:
                self._table.move_to_end(self._last_line)
            state.observe(line, cfg.successors_per_entry)
        self._last_line = line

        # predict: replay this line's most frequent successors
        state = self._table.get(line)
        if state is None:
            return []
        self._table.move_to_end(line)
        return [
            PrefetchRequest(addr=successor * cfg.line_bytes)
            for successor in state.predict(cfg.degree)
        ]

    def storage_bits(self) -> int:
        # per entry: 48-bit tag + successors * (48-bit address + 8-bit count)
        cfg = self.config
        return cfg.table_entries * (48 + cfg.successors_per_entry * (48 + 8))

    def reset(self) -> None:
        self._table.clear()
        self._last_line = None

    def is_pristine(self) -> bool:
        return not self._table and self._last_line is None
