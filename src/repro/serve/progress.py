"""Live-throughput sidecar for ``repro serve`` (cells/s and ETA).

The result DB is deliberately clock-free — its canonical dump is part
of the determinism story (DET003 bans wall-clock reads across the sim
packages, and the resume/parity suites compare DBs byte for byte), so
progress timestamps must never land in it.  They land here instead: a
small JSON sidecar next to the DB file (``<db>.progress.json``) holding
a bounded window of ``[timestamp, completed_cells]`` samples per sweep.

The scheduler stays clock-free too: it emits a deterministic
``on_cells(sweep, done, total)`` count stream, and *this* module — the
operational serving layer, on the reviewed DET003 allowlist — attaches
wall-clock timestamps on the way to disk.  ``repro serve status`` folds
the samples into cells/s over the recent window and a remaining-cells
ETA; a sweep with no fresh samples (finished long ago, or being run by
nobody) simply reports no rate.

The sidecar is advisory: losing or deleting it loses nothing but the
rate display, and concurrent submitters clobbering each other's write
at worst drops a sample from the other's window.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

__all__ = ["ProgressTracker", "throughput"]

#: samples kept per sweep: at one sample per committed batch this spans
#: the last few minutes of a big sweep — enough for a stable recent rate
SAMPLE_CAP = 64

#: samples older than this no longer describe the *current* rate; status
#: treats a window whose newest sample is staler as "no live submitter"
STALE_AFTER_S = 600.0


def throughput(samples: list[list[float]]) -> float | None:
    """Cells/s over a ``[t, done]`` sample window, or ``None``.

    Needs at least two samples spanning positive time and positive
    progress — a resumed sweep whose first callback already reports
    every cell done produces one sample and, correctly, no rate.
    """
    if len(samples) < 2:
        return None
    t0, d0 = samples[0]
    t1, d1 = samples[-1]
    if t1 <= t0 or d1 <= d0:
        return None
    return (d1 - d0) / (t1 - t0)


class ProgressTracker:
    """Records timestamped completion samples for one DB's sweeps."""

    def __init__(
        self,
        db_path: str | Path,
        clock: Callable[[], float] | None = None,
    ):
        self.path = Path(str(db_path) + ".progress.json")
        # injectable clock so tests drive deterministic timelines; the
        # default is the one reviewed wall-clock read in the serve layer
        self._clock = clock if clock is not None else time.time
        self._data: dict[str, dict] | None = None

    # -- write side (submit) -------------------------------------------

    def _load(self) -> dict[str, dict]:
        if self._data is None:
            try:
                self._data = json.loads(self.path.read_text())
            except (OSError, ValueError):
                self._data = {}
        return self._data

    def _flush(self) -> None:
        try:
            self.path.write_text(json.dumps(self._data))
        except OSError:  # advisory telemetry: never fail the sweep
            pass

    def on_cells(self, sweep: str, done: int, total: int) -> None:
        """Scheduler callback: timestamp and persist one sample.

        The first callback of a submit (the resume diff) resets the
        sweep's window — rates never span the gap between two submits.
        """
        data = self._load()
        entry = data.get(sweep)
        if entry is None or entry.get("total") != total or not entry.get("open"):
            entry = {"total": total, "open": True, "samples": []}
            data[sweep] = entry
        entry["samples"].append([float(self._clock()), int(done)])
        del entry["samples"][:-SAMPLE_CAP]
        if done >= total:
            entry["open"] = False  # the next submit starts a fresh window
        self._flush()

    # -- read side (status) --------------------------------------------

    def rates(self) -> dict[str, tuple[float | None, float | None]]:
        """``{sweep: (cells_per_sec, eta_seconds)}`` from the sidecar.

        ``eta_seconds`` needs a rate *and* the recorded total; both come
        back ``None`` for sweeps without a fresh window (nothing ran
        recently, or the sidecar was lost — both fine).
        """
        out: dict[str, tuple[float | None, float | None]] = {}
        now = float(self._clock())
        for sweep, entry in self._load().items():
            samples = entry.get("samples") or []
            rate = throughput(samples)
            if rate is not None and now - samples[-1][0] > STALE_AFTER_S:
                rate = None
            eta: float | None = None
            if rate is not None:
                remaining = max(0, int(entry.get("total", 0)) - int(samples[-1][1]))
                eta = remaining / rate
            out[sweep] = (rate, eta)
        return out
