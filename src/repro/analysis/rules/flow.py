"""FLW: hot-path dataflow — keep the per-access loop allocation-free.

PR 4 made ``Simulator.run`` a profile-guided kernel: no allocation, no
repeated attribute loads, no enum hashing inside the per-access loop.
Nothing *enforced* that shape — one innocent ``info = {...}`` in a later
PR would quietly give back the 2x.  These rules pin the shape:

* **FLW001** — object allocation inside the hot loop: list/dict/set
  displays and comprehensions, generator expressions, lambdas,
  f-strings, and constructor calls (builtin container types or project
  classes).  Tuples are exempt — the kernel's ``tuple_new`` payloads
  and ring entries are tuples by design, and CPython allocates small
  tuples from a free list.
* **FLW002** — an un-hoisted bound-method call: ``recv.meth(...)``
  where ``recv`` is loop-invariant.  Every iteration pays a dict lookup
  plus a bound-method allocation; hoist ``meth = recv.meth`` above the
  loop.  Plain attribute *reads* are not flagged — some (``bhr._value``)
  must be re-read every iteration for correctness.
* **FLW003** — enum equality / hashing in the loop: ``== / !=``
  against an enum member (or a local alias of one) and subscripts keyed
  by one go through rich comparison and ``__hash__``; the kernel uses
  ``is`` on hoisted members instead.
* **FLW004** — a silent degrade path: an ``except`` handler in
  ``sim/cache.py`` / ``workloads/store.py`` that neither re-raises nor
  logs.  Degrade-to-rebuild is a *feature* of those modules, but an
  unobservable degrade hides corrupt stores and cold-cache storms.
  Handlers catching only ``FileNotFoundError`` are exempt: a cold miss
  is the expected case, not a degradation.

Raise-only paths inside the loop (guard clauses building an error
message) are exempt from FLW001 — allocation on the way to an exception
is free.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import (
    handler_exception_names,
    handler_logs,
    handler_reraises,
    names_bound_in,
    outer_for_loops,
    simple_local_bindings,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import ModuleInfo, SemanticModel
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project

#: builtin constructors that allocate a fresh container/object
ALLOCATING_BUILTINS = frozenset(
    {"list", "dict", "set", "frozenset", "bytearray", "object"}
)

#: exception types whose silent handling is the expected cold-miss path
EXPECTED_MISS_EXCEPTIONS = frozenset({"FileNotFoundError"})

#: default hot-path targets: (file, function qualname) of the kernel
DEFAULT_HOT_TARGETS: tuple[tuple[str, str], ...] = (
    ("sim/simulator.py", "Simulator.run"),
)

#: default FLW004 scope: the degrade-to-rebuild modules (the native
#: kernel's build/decode/adapter layers all degrade to the interpreted
#: path and must never swallow a failure silently)
DEFAULT_DEGRADE_SCOPE: tuple[str, ...] = (
    "sim/cache.py",
    "workloads/store.py",
    "sim/native/build.py",
    "sim/native/adapter.py",
    "sim/native/decode.py",
)


@register_rule
class HotPathDataflowRule(Rule):
    """Allocation, un-hoisted loads and enum ops in the per-access loop."""

    rule_id = "FLW"
    title = "hot-path dataflow: allocation-free per-access loop"

    codes = {
        "FLW001": "object allocation inside the hot per-access loop",
        "FLW002": "un-hoisted bound-method call on a loop-invariant "
        "receiver in the hot loop",
        "FLW003": "enum equality/hash operation in the hot loop "
        "(use `is` on hoisted members)",
        "FLW004": "except handler degrades silently (no raise, no log)",
    }

    def __init__(
        self,
        hot_targets: tuple[tuple[str, str], ...] = DEFAULT_HOT_TARGETS,
        degrade_scope: tuple[str, ...] = DEFAULT_DEGRADE_SCOPE,
    ):
        self.hot_targets = hot_targets
        self.degrade_scope = degrade_scope

    def check(self, project: Project) -> Iterator[Finding]:
        model = project.semantic()
        for rel, qualname in self.hot_targets:
            info = model.by_rel.get(rel)
            if info is None or qualname not in info.functions:
                continue
            node = info.functions[qualname]
            bindings = simple_local_bindings(node)
            enum_aliases = self._enum_aliases(model, info, bindings)
            loops = outer_for_loops(node)
            if not loops:
                continue
            # the per-access loop is the loop that dominates the
            # function body; small pre/post-processing loops (histogram
            # folds, warmup slicing) are not the hot path
            hot = max(loops, key=lambda lp: sum(1 for _ in ast.walk(lp)))
            yield from self._check_loop(model, info, qualname, hot, enum_aliases)
        yield from self._check_degrade_paths(project)

    # -- hot-loop checks ------------------------------------------------

    def _check_loop(
        self,
        model: SemanticModel,
        info: ModuleInfo,
        qualname: str,
        loop: ast.For,
        enum_aliases: set[str],
    ) -> Iterator[Finding]:
        loop_bound = names_bound_in(loop)
        raise_nodes = self._nodes_under_raises(loop)
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if sub in raise_nodes:
                    continue
                yield from self._check_allocation(model, info, qualname, sub)
                yield from self._check_unhoisted(
                    info, qualname, sub, loop_bound
                )
                yield from self._check_enum_ops(
                    model, info, qualname, sub, enum_aliases
                )

    @staticmethod
    def _nodes_under_raises(loop: ast.For) -> set[ast.AST]:
        """Every node inside a ``raise`` statement within the loop."""
        under: set[ast.AST] = set()
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Raise):
                under.update(ast.walk(sub))
        return under

    def _check_allocation(
        self,
        model: SemanticModel,
        info: ModuleInfo,
        qualname: str,
        node: ast.AST,
    ) -> Iterator[Finding]:
        label: str | None = None
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            label = f"{type(node).__name__.lower()} display"
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            label = "comprehension"
        elif isinstance(node, ast.Lambda):
            label = "lambda"
        elif isinstance(node, ast.JoinedStr):
            label = "f-string"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ALLOCATING_BUILTINS:
                    label = f"{func.id}() call"
                else:
                    kind, target, _ = model.resolve(info, func.id)
                    if kind == "class":
                        label = f"{func.id}() instantiation"
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                kind, target, _ = model.resolve(
                    info, f"{func.value.id}.{func.attr}"
                )
                if kind == "class":
                    label = f"{func.value.id}.{func.attr}() instantiation"
        if label is not None:
            yield Finding(
                info.rel,
                getattr(node, "lineno", 0),
                "FLW001",
                f"{label} inside the hot per-access loop of {qualname}; "
                "allocate outside the loop or restructure to tuples",
            )

    def _check_unhoisted(
        self,
        info: ModuleInfo,
        qualname: str,
        node: ast.AST,
        loop_bound: set[str],
    ) -> Iterator[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            return
        recv = node.func.value.id
        if recv == "self" or recv in loop_bound:
            return
        yield Finding(
            info.rel,
            node.lineno,
            "FLW002",
            f"{recv}.{node.func.attr}(...) in the hot loop of {qualname} "
            f"re-binds the method every iteration; hoist "
            f"`{node.func.attr} = {recv}.{node.func.attr}` above the loop",
        )

    def _check_enum_ops(
        self,
        model: SemanticModel,
        info: ModuleInfo,
        qualname: str,
        node: ast.AST,
        enum_aliases: set[str],
    ) -> Iterator[Finding]:
        def is_enum_ref(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in enum_aliases
            if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name
            ):
                return self._is_enum_class(model, info, expr.value.id)
            return False

        if isinstance(node, ast.Compare):
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                return
            if any(is_enum_ref(e) for e in [node.left, *node.comparators]):
                yield Finding(
                    info.rel,
                    node.lineno,
                    "FLW003",
                    f"enum ==/!= compare in the hot loop of {qualname}; "
                    "use `is` against a hoisted member",
                )
        elif isinstance(node, ast.Subscript):
            if is_enum_ref(node.slice):
                yield Finding(
                    info.rel,
                    node.lineno,
                    "FLW003",
                    f"enum-keyed subscript in the hot loop of {qualname} "
                    "hashes the member every iteration; index by a "
                    "hoisted int (`member.value`) instead",
                )

    def _enum_aliases(
        self,
        model: SemanticModel,
        info: ModuleInfo,
        bindings: dict[str, ast.expr],
    ) -> set[str]:
        """Function locals bound to an enum member (``x = Cls.MEMBER``)."""
        aliases: set[str] = set()
        for name, value in bindings.items():
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and self._is_enum_class(model, info, value.value.id)
            ):
                aliases.add(name)
        return aliases

    @staticmethod
    def _is_enum_class(
        model: SemanticModel, info: ModuleInfo, name: str
    ) -> bool:
        if name in info.enums:
            return True
        kind, target, target_info = model.resolve(info, name)
        if kind != "class" or target_info is None:
            return False
        local = target[len(target_info.name) + 1 :]
        return local in target_info.enums

    # -- FLW004: silent degrade paths -----------------------------------

    def _check_degrade_paths(self, project: Project) -> Iterator[Finding]:
        for rel in self.degrade_scope:
            source = project.get(rel)
            if source is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if handler_reraises(node) or handler_logs(node):
                    continue
                caught = handler_exception_names(node)
                if caught and caught <= EXPECTED_MISS_EXCEPTIONS:
                    continue
                what = ", ".join(sorted(c or "<bare>" for c in caught))
                yield Finding(
                    rel,
                    node.lineno,
                    "FLW004",
                    f"except ({what}) degrades silently — neither "
                    "re-raises nor logs; emit log.warning so corrupt-"
                    "store fallbacks are observable",
                )
