"""In-kernel batch driver suite: batch-of-N ≡ N single-cell runs.

The batch entry point (:func:`repro.sim.native.adapter.run_native_batch`,
one GIL-released ``rp_run_batch`` call per workload-pure shard) must be
an *invisible* optimization: every cell's result bit-identical to the
single-cell native run of the same prefetcher — which the kernel-parity
and fuzz suites in turn prove identical to the interpreted oracle — and
provably independent of the OpenMP team size, because cells share only
``const`` trace columns and write disjoint output blocks.

Coverage here:

* batch-of-N against N fresh single-cell ``Simulator`` runs;
* thread-count invariance (1, 2, 4 and the OpenMP default);
* warmup and ``start_index`` riding the shared columns correctly;
* per-cell fallback isolation — one unrepresentable cell degrades
  alone, with its reason, while its neighbours stay native;
* the deterministic batch telemetry counters;
* the pool's ``run_batch`` with the kernel driver on vs off (the PR 9
  per-cell dispatch), which is exactly the parity the sweep benchmark
  gates on;
* ``--runslow``: a randomized differential fuzz over shard composition
  (sizes, eligible/fallback mixes, thread counts), and a subprocess leg
  that forces the serial (no-OpenMP) build and requires bit-identical
  payloads from whichever build this process loaded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.prefetchers.stride import StrideConfig, StridePrefetcher
from repro.sim import native as native_pkg
from repro.sim.codec import encode_result
from repro.sim.native import adapter
from repro.sim.sched.pool import BatchShared, run_batch
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload
from repro.workloads.trace import MemoryAccess

pytestmark = pytest.mark.skipif(
    not native_pkg.is_available(),
    reason="compiled kernel unavailable (numpy/cffi/toolchain)",
)

LIMIT = 300

_TRACES: dict[str, list] = {}


def _trace(name: str) -> list:
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).build().trace()[:LIMIT]
    return _TRACES[name]


def _mixed_prefetchers() -> list:
    """A representative shard: RL context variants + table baselines."""
    return [
        ContextPrefetcher(ContextPrefetcherConfig()),
        ContextPrefetcher(ContextPrefetcherConfig(seed=7, cst_entries=1024)),
        ContextPrefetcher(ContextPrefetcherConfig(policy="softmax")),
        StridePrefetcher(StrideConfig(degree=4)),
        StridePrefetcher(StrideConfig(degree=2, table_entries=16)),
    ]


def _batch_encoded(prefetchers, trace, *, threads: int, **kwargs) -> list:
    results, reasons, _trace, _limit = adapter.run_native_batch(
        prefetchers,
        trace,
        workload_name="batch-test",
        limit=None,
        threads=threads,
        **kwargs,
    )
    return [
        None if r is None else encode_result(r) for r in results
    ], reasons


class TestBatchParity:
    def test_batch_equals_single_cell_native_runs(self):
        trace = _trace("list")
        encoded, reasons = _batch_encoded(
            _mixed_prefetchers(), trace, threads=1
        )
        assert all(r is None for r in reasons), reasons
        for pos, pf in enumerate(_mixed_prefetchers()):
            sim = Simulator(pf, native=True)
            single = sim.run(trace, workload_name="batch-test")
            assert sim.last_run_native, sim.last_native_fallback
            assert encoded[pos] == encode_result(single), (
                f"cell {pos} ({pf.name}) diverged from its single-cell run"
            )

    def test_thread_count_invariance(self):
        trace = _trace("array")
        reference = None
        for threads in (0, 1, 2, 4):
            encoded, reasons = _batch_encoded(
                _mixed_prefetchers(), trace, threads=threads
            )
            assert all(r is None for r in reasons), reasons
            if reference is None:
                reference = encoded
            else:
                assert encoded == reference, (
                    f"threads={threads} changed batch results"
                )

    def test_warmup_parity(self):
        trace = _trace("list")
        encoded, reasons = _batch_encoded(
            _mixed_prefetchers(), trace, threads=2, warmup=50
        )
        assert all(r is None for r in reasons), reasons
        for pos, pf in enumerate(_mixed_prefetchers()):
            sim = Simulator(pf, native=True)
            single = sim.run(trace, workload_name="batch-test", warmup=50)
            assert sim.last_run_native, sim.last_native_fallback
            assert encoded[pos] == encode_result(single)

    def test_start_index_parity(self):
        trace = _trace("array")
        encoded, reasons = _batch_encoded(
            _mixed_prefetchers(), trace, threads=2, start_index=1000
        )
        assert all(r is None for r in reasons), reasons
        for pos, pf in enumerate(_mixed_prefetchers()):
            sim = Simulator(pf, native=True)
            single = sim.run(
                trace, workload_name="batch-test", start_index=1000
            )
            assert sim.last_run_native, sim.last_native_fallback
            assert encoded[pos] == encode_result(single)


class TestFallbackIsolation:
    def test_unrepresentable_cell_degrades_alone(self):
        # degree > the kernel's 64-request cap cannot run natively; its
        # neighbours must stay in the kernel and keep their exact results
        trace = _trace("list")
        bad = StridePrefetcher(StrideConfig(degree=100))
        cells = [
            ContextPrefetcher(ContextPrefetcherConfig()),
            bad,
            StridePrefetcher(StrideConfig(degree=4)),
        ]
        results, reasons, _t, _l = adapter.run_native_batch(
            cells, trace, workload_name="batch-test", limit=None, threads=2
        )
        assert results[1] is None
        assert reasons[1], "fallback must carry a reason"
        assert results[0] is not None and results[2] is not None
        for pos in (0, 2):
            pf = (
                ContextPrefetcher(ContextPrefetcherConfig())
                if pos == 0
                else StridePrefetcher(StrideConfig(degree=4))
            )
            sim = Simulator(pf, native=True)
            single = sim.run(trace, workload_name="batch-test")
            assert encode_result(results[pos]) == encode_result(single)

    def test_fallback_prefetcher_left_pristine(self):
        # a degraded cell's Python prefetcher must be untouched, so the
        # caller can still run it interpreted
        trace = _trace("list")
        bad = StridePrefetcher(StrideConfig(degree=100))
        results, reasons, out_trace, out_limit = adapter.run_native_batch(
            [bad], trace, workload_name="batch-test", limit=None, threads=1
        )
        assert results[0] is None
        assert bad.is_pristine()
        interp = Simulator(bad).run(out_trace, workload_name="batch-test")
        oracle = Simulator(
            StridePrefetcher(StrideConfig(degree=100))
        ).run(trace, workload_name="batch-test")
        assert interp == oracle


class TestBatchCounters:
    def test_counters_accumulate(self):
        adapter.reset_batch_counters()
        trace = _trace("list")
        cells = [
            ContextPrefetcher(ContextPrefetcherConfig()),
            StridePrefetcher(StrideConfig(degree=100)),  # falls back
            StridePrefetcher(StrideConfig(degree=4)),
        ]
        adapter.run_native_batch(
            cells, trace, workload_name="batch-test", limit=None, threads=2
        )
        counters = adapter.batch_counters()
        assert counters["batches"] == 1
        assert counters["cells"] == 3
        assert counters["native_cells"] == 2
        assert counters["fallback_cells"] == 1
        assert counters["kernel_threads"] == 2
        adapter.reset_batch_counters()
        assert not any(adapter.batch_counters().values())


class TestPoolBatchDriver:
    """run_batch with the kernel driver on vs off — the benchmark gate."""

    def _shared(self, trace, *, kernel_batch: bool, threads: int = 2):
        base = ContextPrefetcherConfig()
        return BatchShared(
            workload="pool-batch-test",
            limit=None,
            native=True,
            context_table=(
                None,
                dataclasses.replace(base, seed=11),
                dataclasses.replace(base, max_degree=100),  # falls back
            ),
            trace=tuple(trace),
            kernel_batch=kernel_batch,
            kernel_threads=threads,
        )

    def test_kernel_batch_on_off_parity(self):
        trace = _trace("list")
        cells = tuple(
            (index, pf, ctx)
            for index, (pf, ctx) in enumerate(
                [
                    ("context", 0),
                    ("context", 1),
                    ("context", 2),
                    ("stride", 0),
                    ("none", 0),
                ]
            )
        )
        on, _deg = run_batch(self._shared(trace, kernel_batch=True), cells)
        off, _deg = run_batch(self._shared(trace, kernel_batch=False), cells)
        assert [(i, payload) for i, payload, _info in on] == [
            (i, payload) for i, payload, _info in off
        ]
        # the driver really ran: every representable cell reports native
        on_info = {i: info for i, _p, info in on}
        assert on_info[0] == (True, None)
        assert on_info[3] == (True, None)
        # the over-cap context cell degraded alone, with a reason
        assert on_info[2][0] is False and on_info[2][1]


def _batch_fuzz_trace(rng: random.Random, length: int) -> list[MemoryAccess]:
    """Strided segments with scatter jumps: enough structure to train
    every family, small enough to keep the interpreted leg fast."""
    trace: list[MemoryAccess] = []
    addr = rng.randrange(1 << 30) * 64
    while len(trace) < length:
        stride = rng.choice((-2, -1, 1, 1, 2, 3)) * 64
        if rng.random() < 0.15:
            addr = rng.randrange(1 << 34)
        for _ in range(rng.randrange(4, 20)):
            if len(trace) >= length:
                break
            addr = (addr + stride) % (1 << 40)
            trace.append(
                MemoryAccess(
                    addr=addr,
                    pc=0x400000 + 4 * rng.randrange(16),
                    is_load=rng.random() < 0.9,
                    inst_gap=rng.randrange(9),
                )
            )
    return trace


@pytest.mark.slow
@pytest.mark.parametrize("case", range(12))
def test_batch_shard_fuzz(case: int) -> None:
    """Randomized shard composition through the production pool path.

    Each case draws a shard size, a context-config table (some entries
    deliberately over the kernel's request cap, forcing the per-cell
    fallback), a prefetcher mix and an OpenMP team size, then requires
    the in-kernel batch driver's payloads to equal the per-cell dispatch
    path's, cell for cell.
    """
    seed = int.from_bytes(
        hashlib.sha256(f"batch-fuzz/{case}".encode()).digest()[:8], "big"
    )
    rng = random.Random(seed)
    trace = tuple(_batch_fuzz_trace(rng, rng.randrange(200, 700)))
    base = ContextPrefetcherConfig()
    table = tuple(
        dataclasses.replace(
            base,
            seed=rng.randrange(1 << 32),
            cst_entries=rng.choice((1024, 2048)),
            max_degree=100 if rng.random() < 0.2 else rng.randrange(1, 8),
        )
        for _ in range(rng.randrange(2, 6))
    )
    names = ("context", "context", "context", "stride", "none", "sms")
    cells = tuple(
        (index, rng.choice(names), rng.randrange(len(table)))
        for index in range(rng.randrange(3, 18))
    )
    threads = rng.choice((1, 2, 4))
    shared = dict(
        workload=f"batch-fuzz-{case}",
        limit=None,
        native=True,
        context_table=table,
        trace=trace,
    )
    on, _ = run_batch(
        BatchShared(**shared, kernel_batch=True, kernel_threads=threads), cells
    )
    off, _ = run_batch(BatchShared(**shared, kernel_batch=False), cells)
    assert [(i, p) for i, p, _info in on] == [(i, p) for i, p, _info in off], (
        f"case {case}: batch driver diverged (threads={threads}, "
        f"{len(cells)} cells)"
    )


@pytest.mark.slow
def test_no_openmp_build_parity(tmp_path) -> None:
    """The serial (``REPRO_NATIVE_NO_OPENMP=1``) build is bit-identical.

    A subprocess forced onto the serial artifact runs a fixed shard and
    prints its encoded payloads; they must equal this process's (usually
    OpenMP) build output exactly.  Also proves the kill-switch works:
    the subprocess asserts its loaded kernel reports no OpenMP.
    """
    script = Path(__file__).with_name("_batch_no_openmp.py")
    env = dict(os.environ)
    env["REPRO_NATIVE_NO_OPENMP"] = "1"
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["openmp"] is False

    trace = _trace(payload["workload"])
    encoded, reasons = _batch_encoded(
        _mixed_prefetchers(), trace, threads=payload["threads"]
    )
    assert all(r is None for r in reasons), reasons
    assert encoded == payload["results"], (
        "serial build diverged from this process's kernel build"
    )
