"""Client API for the sweep service (``repro serve``).

:class:`SweepService` is the programmatic face of the scheduler stack:
submit grid plans, check sweep status, query results.  Concurrent
callers in one process share the persistent warm worker pool and one
result DB; separate processes share the DB file (SQLite WAL) and the
on-disk trace store.  See ``docs/sweep_service.md``.
"""

from repro.serve.service import SweepService

__all__ = ["SweepService"]
