"""Global History Buffer prefetcher (Nesbit & Smith, HPCA 2004).

The GHB is an n-entry FIFO of recent miss addresses; each entry links to
the previous entry that shared its index-table key, so walking the links
recovers a *localized* address stream.  Two axes define the flavour:

* **Localization** — Global (one stream) or PC (per load site).
* **Detection** — Delta Correlation: the most recent ``match_length``
  address deltas are matched against the older delta history; on a match,
  the deltas that followed the earlier occurrence are replayed as
  predictions.

The paper evaluates the G/DC and PC/DC flavours with a 2K-entry GHB,
history (match) length 3, and degree 3 (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


@dataclass(slots=True)
class GHBConfig:
    ghb_entries: int = 2048
    index_entries: int = 256
    match_length: int = 3
    degree: int = 3
    max_walk: int = 64  # bound on link-chain traversal per access
    localization: str = "global"  # "global" or "pc"
    line_bytes: int = 64
    #: classic placement: the GHB records the L1 miss stream
    train_on_miss_only: bool = True

    def __post_init__(self) -> None:
        if self.localization not in ("global", "pc"):
            raise ValueError(f"unknown localization {self.localization!r}")
        if self.match_length < 1:
            raise ValueError("match_length must be >= 1")


@dataclass(slots=True)
class _GHBEntry:
    addr: int
    link: int  # absolute sequence number of the previous same-key entry, or -1


class GHBPrefetcher(Prefetcher):
    """GHB with delta-correlation detection (G/DC or PC/DC)."""

    __slots__ = ("config", "name", "_buffer", "_next_seq", "_index")

    def __init__(self, config: GHBConfig | None = None):
        self.config = config or GHBConfig()
        self.name = "ghb-gdc" if self.config.localization == "global" else "ghb-pcdc"
        self._buffer: list[_GHBEntry | None] = [None] * self.config.ghb_entries
        self._next_seq = 0  # absolute sequence number of the next push
        self._index: dict[int, int] = {}  # key -> absolute seq of newest entry

    # ------------------------------------------------------------------

    def _key_for(self, access: AccessInfo) -> int:
        if self.config.localization == "pc":
            # the index table is tagged: one localized stream per PC, with
            # the table bounded to index_entries (FIFO eviction)
            return access.pc
        return 0

    def _entry_at(self, seq: int) -> _GHBEntry | None:
        """Entry for absolute sequence number ``seq`` if still resident."""
        if seq < 0 or seq < self._next_seq - self.config.ghb_entries:
            return None
        entry = self._buffer[seq % self.config.ghb_entries]
        return entry

    def _localized_stream(self, head_seq: int) -> list[int]:
        """Addresses of the localized stream, newest first."""
        stream: list[int] = []
        seq = head_seq
        oldest_valid = self._next_seq - self.config.ghb_entries
        while seq >= max(0, oldest_valid) and len(stream) < self.config.max_walk:
            entry = self._buffer[seq % self.config.ghb_entries]
            if entry is None:
                break
            stream.append(entry.addr)
            seq = entry.link
        return stream

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        cfg = self.config
        if cfg.train_on_miss_only and not access.primary_miss:
            return []
        addr = (access.addr // cfg.line_bytes) * cfg.line_bytes
        key = self._key_for(access)

        prev_seq = self._index.get(key, -1)
        # Drop a stale link if the previous entry has been overwritten.
        if self._entry_at(prev_seq) is None:
            prev_seq = -1
        seq = self._next_seq
        self._buffer[seq % cfg.ghb_entries] = _GHBEntry(addr=addr, link=prev_seq)
        self._index[key] = seq
        if len(self._index) > cfg.index_entries:
            oldest_key = next(iter(self._index))
            del self._index[oldest_key]
        self._next_seq += 1

        stream = self._localized_stream(seq)
        if len(stream) < cfg.match_length + 2:
            return []

        # Deltas, newest first: deltas[i] = stream[i] - stream[i+1].
        deltas = [stream[i] - stream[i + 1] for i in range(len(stream) - 1)]
        pattern = deltas[: cfg.match_length]

        # Find the most recent earlier occurrence of the pattern.
        match_at = -1
        for start in range(1, len(deltas) - cfg.match_length + 1):
            if deltas[start : start + cfg.match_length] == pattern:
                match_at = start
                break
        if match_at <= 0:
            return []

        # Replay the deltas that followed the match (the deltas at indices
        # just *newer* than the matched window, i.e. match_at-1 ... 0 going
        # forward in time), cumulatively from the current address.  When
        # the match is adjacent (a short-period pattern such as a pure
        # stride), fewer than ``degree`` observed deltas exist; continue
        # by repeating the matched period, as practical DC implementations
        # do to reach the configured degree.
        requests: list[PrefetchRequest] = []
        target = addr
        for step in range(1, cfg.degree + 1):
            idx = match_at - step
            delta = deltas[idx] if idx >= 0 else pattern[idx % cfg.match_length]
            target += delta
            if target > 0:
                requests.append(PrefetchRequest(addr=target))
        return requests

    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        # GHB entry: 48-bit address + pointer (log2 entries); index table:
        # key tag + pointer.
        ptr_bits = max(1, (self.config.ghb_entries - 1).bit_length())
        ghb_bits = self.config.ghb_entries * (48 + ptr_bits)
        index_bits = self.config.index_entries * (16 + ptr_bits)
        return ghb_bits + index_bits

    def reset(self) -> None:
        self._buffer = [None] * self.config.ghb_entries
        self._index.clear()
        self._next_seq = 0

    def is_pristine(self) -> bool:
        return self._next_seq == 0 and not self._index
