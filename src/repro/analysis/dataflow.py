"""Dataflow helpers shared by the FLW and RACE rule families.

Small, purely syntactic analyses over single functions:

* hot-loop extraction — the outermost ``for`` loops of a target
  function, plus the set of names bound *inside* a loop (anything not in
  that set is loop-invariant from the loop body's point of view);
* simple local binding resolution — following straight-line
  ``x = expr`` assignments so a rule can see through one level of
  aliasing (``reader = TraceReader(...); pool.submit(f, reader)``);
* except-handler classification — does a handler re-raise, does it log,
  does it catch only the "expected miss" exception type.

Everything here under-approximates on purpose: a helper that cannot
prove a property stays silent, so rules built on it miss exotic code
rather than inventing findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.graph import FunctionNode

#: logger-ish receiver names for "this handler logs" detection
LOGGER_NAMES = frozenset({"log", "logger", "logging"})

#: logging methods that count as making a degrade path observable
LOGGING_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical"}
)

#: dict/list/set methods that mutate the receiver in place
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
        "sort",
        "reverse",
    }
)


def outer_for_loops(node: FunctionNode) -> list[ast.For]:
    """The outermost ``for`` loops of a function, in source order.

    Nested loops are part of their enclosing loop's body and are not
    returned separately — a hot-path rule treats the whole outer loop
    body as the hot region.
    """
    loops: list[ast.For] = []

    def scan(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                loops.append(stmt)
                continue  # its body belongs to this loop
            for block in _stmt_blocks(stmt):
                scan(block)

    scan(node.body)
    return loops


def _stmt_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """The statement blocks nested directly inside ``stmt`` (no functions)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field_name, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


def names_bound_in(node: ast.AST) -> set[str]:
    """Every name assigned anywhere inside ``node`` (incl. loop targets)."""
    bound: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
    return bound


def simple_local_bindings(node: FunctionNode) -> dict[str, ast.expr]:
    """Locals assigned exactly once by a plain ``name = expr`` statement.

    Names assigned more than once (or through tuple targets, loops,
    ``with`` items …) are excluded — the single static value would be a
    lie.  This lets a rule see through one level of aliasing without a
    real dataflow lattice.
    """
    counts: dict[str, int] = {}
    values: dict[str, ast.expr] = {}
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
        ):
            name = sub.targets[0].id
            counts[name] = counts.get(name, 0) + 1
            values[name] = sub.value
        elif isinstance(sub, (ast.For, ast.AugAssign)):
            # loop-carried / augmented names are never single-assignment
            for name in names_bound_in(sub.target):
                counts[name] = counts.get(name, 0) + 2
        elif isinstance(sub, ast.With):
            for item in sub.items:
                if item.optional_vars is not None:
                    for name in names_bound_in(item.optional_vars):
                        counts[name] = counts.get(name, 0) + 2
        elif isinstance(sub, (ast.Assign, ast.AnnAssign)):
            # tuple/attribute targets: bound but not chaseable
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                for name in names_bound_in(target):
                    counts[name] = counts.get(name, 0) + 2
    return {
        name: value for name, value in values.items() if counts.get(name) == 1
    }


def resolve_local(
    expr: ast.expr, bindings: dict[str, ast.expr], depth: int = 4
) -> ast.expr:
    """Chase ``Name`` references through single-assignment locals."""
    while depth and isinstance(expr, ast.Name) and expr.id in bindings:
        expr = bindings[expr.id]
        depth -= 1
    return expr


# ----------------------------------------------------------------------
# except-handler classification (FLW004)


def handler_exception_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception names a handler catches ('' for a bare except)."""
    if handler.type is None:
        return {""}
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: set[str] = set()
    for t in types:
        if isinstance(t, ast.Name):
            names.add(t.id)
        elif isinstance(t, ast.Attribute):
            names.add(t.attr)
        else:
            names.add("")
    return names


def handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True if any path through the handler raises."""
    return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))


def handler_logs(handler: ast.ExceptHandler) -> bool:
    """True if the handler calls a logging method on a logger-ish name."""
    for sub in ast.walk(handler):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in LOGGING_METHODS
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id in LOGGER_NAMES
        ):
            return True
    return False


def handler_returns_value(handler: ast.ExceptHandler) -> bool:
    """True if the handler returns/continues — i.e. swallows and moves on."""
    return any(
        isinstance(sub, (ast.Return, ast.Continue, ast.Pass))
        for sub in ast.walk(handler)
    )


# ----------------------------------------------------------------------
# global read/write scanning (RACE001)


def global_accesses(
    node: FunctionNode, globals_of_interest: set[str]
) -> tuple[set[str], set[str]]:
    """``(reads, writes)`` of the given module-level names inside ``node``.

    A *write* is: a ``global`` declaration followed by any store, a
    mutator-method call (``G.append(...)``), or a subscript/attribute
    store (``G[k] = v`` / ``G.x = v``).  Everything else that mentions
    the name is a read.  Names shadowed by a local binding are dropped
    from both sets — the function is talking about its own variable.
    """
    declared_global: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(
                n for n in sub.names if n in globals_of_interest
            )
    shadowed = {
        name
        for name in names_bound_in(node)
        if name in globals_of_interest and name not in declared_global
    }
    watched = globals_of_interest - shadowed

    reads: set[str] = set()
    writes: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            recv = sub.func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in watched
                and sub.func.attr in MUTATOR_METHODS
            ):
                writes.add(recv.id)
        elif isinstance(sub, (ast.Subscript, ast.Attribute)):
            base = sub.value
            if isinstance(base, ast.Name) and base.id in watched:
                if isinstance(sub.ctx, (ast.Store, ast.Del)):
                    writes.add(base.id)
                else:
                    reads.add(base.id)
        elif isinstance(sub, ast.Name) and sub.id in watched:
            if isinstance(sub.ctx, ast.Load):
                reads.add(sub.id)
            elif sub.id in declared_global:
                writes.add(sub.id)
    return reads, writes
