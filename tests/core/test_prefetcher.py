"""End-to-end tests for the context-based prefetcher."""

import pytest

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.core.prefetch_queue import QueueEntry
from repro.hints import RefForm, SemanticHints
from repro.prefetchers.base import AccessInfo


def ring_trace(num_nodes=40, period_bytes=256, base=0x100000):
    """Addresses of a repeating pointer ring (delta-representable)."""
    return [base + i * period_bytes for i in range(num_nodes)]


def drive_ring(pf, addrs, iterations, pc=0x400008):
    """Replay a pointer-chase ring; returns total requests produced."""
    hints = SemanticHints(type_id=1, link_offset=16, ref_form=RefForm.ARROW)
    total = []
    index = 0
    for _ in range(iterations):
        for i, addr in enumerate(addrs):
            info = AccessInfo(
                index=index,
                cycle=0,
                addr=addr,
                pc=pc,
                last_value=addrs[(i - 1) % len(addrs)],
                hints=hints,
            )
            total.extend(pf.on_access(info))
            index += 1
    return total


class TestLearning:
    def test_converges_on_recurring_traversal(self):
        pf = ContextPrefetcher()
        drive_ring(pf, ring_trace(), iterations=100)
        assert pf.accuracy() > 0.5
        assert pf.queue.hits > 500

    def test_hit_depths_cluster_in_reward_window(self):
        pf = ContextPrefetcher()
        drive_ring(pf, ring_trace(), iterations=100)
        cfg = pf.config
        total = sum(pf.hit_depth_histogram.values())
        inside = sum(
            c
            for d, c in pf.hit_depth_histogram.items()
            if cfg.window_lo <= d <= cfg.window_hi
        )
        assert inside / total > 0.5

    def test_no_learning_on_random_stream(self):
        import random

        rng = random.Random(3)
        pf = ContextPrefetcher()
        for i in range(4000):
            info = AccessInfo(
                index=i, cycle=0, addr=rng.randrange(1, 1 << 30) * 64, pc=0x400000
            )
            pf.on_access(info)
        assert pf.accuracy() < 0.2

    def test_learns_strides_too(self):
        # Section 7.1: "the context-based prefetcher correctly identifies
        # strict regular patterns"
        pf = ContextPrefetcher()
        index = 0
        for it in range(60):
            for i in range(64):
                info = AccessInfo(
                    index=index, cycle=0, addr=0x100000 + i * 64, pc=0x400000
                )
                pf.on_access(info)
                index += 1
        assert pf.accuracy() > 0.3


class TestPredictionMechanics:
    def test_requests_are_line_aligned(self):
        pf = ContextPrefetcher()
        reqs = drive_ring(pf, ring_trace(), iterations=30)
        assert reqs
        assert all(r.addr % pf.config.delta_granularity == 0 for r in reqs)

    def test_duplicate_target_becomes_shadow(self):
        pf = ContextPrefetcher()
        drive_ring(pf, ring_trace(), iterations=100)
        assert pf.predictions_shadow > 0

    def test_requests_carry_queue_entry_meta(self):
        pf = ContextPrefetcher()
        reqs = drive_ring(pf, ring_trace(), iterations=30)
        assert all(isinstance(r.meta, QueueEntry) for r in reqs)

    def test_mshr_rejection_converts_to_shadow(self):
        pf = ContextPrefetcher()
        reqs = drive_ring(pf, ring_trace(), iterations=30)
        real = [r for r in reqs if not r.shadow]
        assert real
        before = pf.predictions_shadow
        pf.on_prefetch_issue(real[0], issued=False, reason="mshr-pressure")
        assert real[0].meta.shadow
        assert pf.predictions_shadow == before + 1

    def test_issue_success_keeps_real(self):
        pf = ContextPrefetcher()
        reqs = drive_ring(pf, ring_trace(), iterations=30)
        real = [r for r in reqs if not r.shadow][0]
        pf.on_prefetch_issue(real, issued=True, reason="issued")
        assert not real.meta.shadow


class TestConfiguration:
    def test_storage_near_table2_budget(self):
        # Table 2 reports ~31kB (CST 18kB + reducer 12kB + queues).  Our
        # honest accounting of the same geometry lands at ~39kB because an
        # 8-attribute bitmap plus tag costs 10 bits per reducer entry where
        # the paper's 12kB implies ~6.  Assert the same order of magnitude.
        pf = ContextPrefetcher()
        assert 28 <= pf.storage_kib() <= 42
        # and the CST alone matches the paper's 18kB exactly
        cst_bits = pf.config.cst_entries * (
            pf.config.cst_tag_bits + pf.config.cst_links * (pf.config.delta_bits + 8)
        )
        assert cst_bits / 8 / 1024 == 18.0

    def test_figure13_scaling(self):
        config = ContextPrefetcherConfig().scaled(8192)
        assert config.cst_entries == 8192
        assert config.reducer_entries == 8192 * 8

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ContextPrefetcherConfig(window_lo=50, window_hi=18)

    def test_queue_must_outspan_window(self):
        with pytest.raises(ValueError):
            ContextPrefetcherConfig(prefetch_queue_entries=40, window_hi=50)

    def test_sample_depths_must_fit_history(self):
        with pytest.raises(ValueError):
            ContextPrefetcherConfig(history_entries=10, sample_depths=(5, 20))


class TestDeterminismAndReset:
    def test_deterministic_across_instances(self):
        a, b = ContextPrefetcher(), ContextPrefetcher()
        ra = drive_ring(a, ring_trace(), iterations=40)
        rb = drive_ring(b, ring_trace(), iterations=40)
        assert [(r.addr, r.shadow) for r in ra] == [(r.addr, r.shadow) for r in rb]

    def test_reset_restores_cold_state(self):
        pf = ContextPrefetcher()
        ra = drive_ring(pf, ring_trace(), iterations=40)
        pf.reset()
        assert pf.accuracy() == 0.0
        assert pf.cst.occupancy() == 0
        rb = drive_ring(pf, ring_trace(), iterations=40)
        assert [(r.addr, r.shadow) for r in ra] == [(r.addr, r.shadow) for r in rb]

    def test_name(self):
        assert ContextPrefetcher().name == "context"
