"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suites_and_prefetchers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec2006" in out
        assert "context" in out and "sms" in out


class TestRun:
    def test_run_prints_summary_and_classes(self, capsys):
        assert main(["run", "random", "none", "--limit", "500"]) == 0
        out = capsys.readouterr().out
        assert "random/none" in out
        assert "miss not prefetched" in out

    def test_run_with_context_prefetcher(self, capsys):
        assert main(["run", "array", "context", "--limit", "1000"]) == 0
        out = capsys.readouterr().out
        assert "array/context" in out

    def test_unknown_workload_exits_nonzero(self, capsys):
        # failed subcommands must report an error and return a nonzero
        # exit code so make/CI can gate on python -m repro
        assert main(["run", "not-a-workload", "none"]) == 1
        err = capsys.readouterr().err
        assert "error: run:" in err and "not-a-workload" in err

    def test_unknown_prefetcher_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "array", "oracle"])


class TestSweep:
    def test_explicit_workloads_and_prefetchers(self, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "array,random",
                "--prefetchers",
                "none,context",
                "--limit",
                "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out
        assert "array" in out and "random" in out


class TestFigure:
    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure_5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert main(["figure", "tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestExitCodes:
    def test_replay_missing_trace_exits_nonzero(self, capsys):
        assert main(["replay", "/no/such/trace.jsonl", "none"]) == 1
        assert "error: replay:" in capsys.readouterr().err


class TestLint:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "analysis: clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "BUD" in out and "EXP" in out

    def test_lint_select_subset(self, capsys):
        assert main(["lint", "--select", "DET"]) == 0
        assert "analysis: clean" in capsys.readouterr().out


class TestTraceAndReplay:
    def test_trace_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "random.jsonl")
        assert main(["trace", "random", path, "--limit", "400"]) == 0
        out = capsys.readouterr().out
        assert "wrote 400 accesses" in out

        assert main(["replay", path, "none"]) == 0
        out = capsys.readouterr().out
        assert "/none" in out and "IPC" in out

    def test_replay_with_stats_dump(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(["trace", "array", path, "--limit", "300"])
        capsys.readouterr()
        assert main(["replay", path, "context", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Begin Simulation Statistics" in out
        assert "pf.issued" in out
