"""Quickstart: run the context-based prefetcher against a baseline.

Simulates the ``list`` μbenchmark — a linked-list traversal over a
scattered heap, the canonical semantic-locality workload — once without
prefetching and once with the context-based prefetcher, then prints the
headline metrics the paper reports: IPC speedup, L1/L2 MPKI, and the
Figure 9 access-benefit breakdown.

Run:  python examples/quickstart.py
"""

from repro import run_workload
from repro.memory.stats import ACCESS_CLASS_ORDER


def main() -> None:
    print("simulating 'list' with no prefetching ...")
    baseline = run_workload("list", "none")
    print("simulating 'list' with the context-based prefetcher ...")
    context = run_workload("list", "context")

    print()
    print(f"baseline IPC: {baseline.ipc:.3f}   context IPC: {context.ipc:.3f}")
    print(f"speedup:      {context.speedup_over(baseline):.2f}x")
    print(
        f"L1 MPKI:      {baseline.l1_mpki:.1f} -> {context.l1_mpki:.1f}   "
        f"L2 MPKI: {baseline.l2_mpki:.1f} -> {context.l2_mpki:.1f}"
    )
    print(f"prefetcher accuracy (queue hit-rate EMA): {context.prefetcher_accuracy:.2f}")
    print(f"prefetcher storage: {context.storage_bits / 8 / 1024:.1f} KiB")

    print()
    print("access classification (Figure 9 categories):")
    fractions = context.classifier.fractions()
    for cls in ACCESS_CLASS_ORDER:
        print(f"  {cls.value:32s} {fractions[cls]:6.1%}")


if __name__ == "__main__":
    main()
