"""Binary mmap trace store: compiled access streams shared across sweeps.

Every sweep cell consumes the same immutable input — a workload's access
trace — yet before this module existed each cell either unpickled its
own truncated copy or rebuilt the whole workload from scratch inside the
worker.  Trace-driven prefetcher frameworks (Pythia's champsim traces,
Athena) make large sweeps tractable by compiling each workload **once**
into a binary trace file that every simulated configuration then maps;
this module is that layer for the repro tree.

Format (``*.rpt``, little-endian throughout)::

    header   magic ``b"RPTRACE\\0"`` · u32 STORE_VERSION · u32 meta length
             · u64 record count
    meta     canonical JSON: workload name, content fingerprint, the
             workloads-source fingerprint the file was compiled from
    records  ``record count`` fixed-size structs (RECORD_FORMAT)

Records are fixed-size (:data:`RECORD_SIZE` bytes) so a reader can seek
to any index without scanning; branch outcomes are bit-packed into a
single word (the builder never emits more than 64 per access) and the
full :class:`~repro.hints.SemanticHints` payload travels in dedicated
fields.  Decoding is lossless: :class:`TraceReader` yields records
field-for-field equal — hints, branch tuples, flags and all — to what
``TraceBuilder`` produced (``tests/workloads/test_store.py`` proves it
for every registry workload).

Store files are content-addressed under ``results/.cache/traces/`` by
``(STORE_VERSION, workloads-source fingerprint, workload name)``: edit
any workload generator (or ``hints.py``) and the old file simply stops
being referenced; ``gc`` removes unreferenced and corrupt files.  A
corrupt, truncated or version-skewed file raises
:class:`TraceStoreError` from the open/validate path — library callers
(the sweep engine, :meth:`TraceStore.ensure`) catch it and degrade to
rebuilding the trace, never to a crash; only the CLI turns it into a
nonzero exit.

The analysis rule ``PERF002`` pins a hash of :data:`RECORD_FIELDS` per
:data:`STORE_VERSION`: any layout change without a version bump fails
``repro lint``, so stale files can never be misread as current ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.hints import NO_HINTS, RefForm, SemanticHints
from repro.workloads.serialize import trace_fingerprint
from repro.workloads.trace import MemoryAccess

if TYPE_CHECKING:
    from repro.workloads.suites import WorkloadSpec

log = logging.getLogger(__name__)

#: bump on ANY change to the record layout or header semantics; the
#: PERF002 analysis rule pins the layout hash per version
STORE_VERSION = 1

MAGIC = b"RPTRACE\x00"

#: the record layout, field by field.  Order and formats are part of the
#: on-disk contract: PERF002 hashes this tuple, so editing it without
#: bumping STORE_VERSION fails ``repro lint``.
RECORD_FIELDS = (
    ("addr", "Q"),  # demand address (u64)
    ("pc", "Q"),  # program counter (u64)
    ("reg_value", "q"),  # live register value (signed: keys may be <0)
    ("value", "q"),  # loaded data (signed: sentinel values may be <0)
    ("branch_bits", "Q"),  # branch outcomes, oldest at bit 0
    ("inst_gap", "I"),  # non-memory instructions since previous access
    ("type_id", "I"),  # SemanticHints.type_id
    ("link_offset", "I"),  # SemanticHints.link_offset
    ("branch_count", "H"),  # number of valid bits in branch_bits
    ("flags", "B"),  # bit0 is_load · bit1 depends_on_prev · bit2 has hints
    ("ref_form", "B"),  # SemanticHints.ref_form (RefForm int value)
)

RECORD_FORMAT = "<" + "".join(fmt for _, fmt in RECORD_FIELDS)
_RECORD_STRUCT = struct.Struct(RECORD_FORMAT)
RECORD_SIZE = _RECORD_STRUCT.size

#: struct format -> numpy dtype string for :func:`record_dtype`; keyed on
#: the same RECORD_FIELDS tuple PERF002 pins, so a layout edit that adds a
#: new format character fails loudly here rather than decoding garbage
_NUMPY_FORMATS = {"Q": "<u8", "q": "<i8", "I": "<u4", "H": "<u2", "B": "u1"}


def record_dtype():
    """Numpy structured dtype mirroring :data:`RECORD_FORMAT` byte-for-byte.

    Built from :data:`RECORD_FIELDS` (the PERF002-pinned layout), packed —
    no alignment padding — so ``itemsize == RECORD_SIZE`` and a store
    file's record block reinterprets as a struct array with zero copies.
    Imports numpy lazily: the base environment runs without it, and every
    caller degrades to the scalar decoder when it is absent.
    """
    import numpy

    dtype = numpy.dtype([(name, _NUMPY_FORMATS[fmt]) for name, fmt in RECORD_FIELDS])
    if dtype.itemsize != RECORD_SIZE:
        raise TraceStoreError(
            f"record dtype itemsize {dtype.itemsize} != RECORD_SIZE "
            f"{RECORD_SIZE}; layout and dtype have diverged"
        )
    return dtype

_HEADER_STRUCT = struct.Struct("<8sIIQ")
HEADER_SIZE = _HEADER_STRUCT.size

_FLAG_IS_LOAD = 1
_FLAG_DEPENDS = 2
_FLAG_HINTED = 4

_U64_MAX = (1 << 64) - 1
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_U32_MAX = (1 << 32) - 1

#: default store location, beside the result cache
DEFAULT_TRACE_DIR = Path("results") / ".cache" / "traces"


class TraceStoreError(Exception):
    """A store file cannot be written, read, or trusted."""


def record_layout_hash(fields: Sequence[Sequence[str]] = RECORD_FIELDS) -> str:
    """Stable hash of the record layout (what PERF002 pins per version)."""
    canonical = json.dumps([list(f) for f in fields], separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# source fingerprint: which code a compiled trace depends on

#: everything a trace's content can depend on: the workload generators
#: and the hint records they attach.  sim/, prefetchers/ etc. are out on
#: purpose — simulator edits must not invalidate compiled traces.
TRACE_SOURCE_PREFIXES = ("workloads/",)
TRACE_SOURCE_FILES = ("hints.py",)

_source_fingerprint_cache: str | None = None


def workloads_fingerprint() -> str:
    """Hash of the trace-producing source files (cached per process)."""
    global _source_fingerprint_cache
    if _source_fingerprint_cache is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in TRACE_SOURCE_FILES or rel.startswith(TRACE_SOURCE_PREFIXES):
                digest.update(rel.encode("utf-8"))
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
        _source_fingerprint_cache = digest.hexdigest()
    return _source_fingerprint_cache


# ----------------------------------------------------------------------
# record codec


def _encode_record(access: MemoryAccess) -> bytes:
    branches = access.branches
    count = len(branches)
    if count > 64:
        raise TraceStoreError(
            f"access at pc {access.pc:#x} carries {count} branch outcomes; "
            "the record format holds at most 64"
        )
    bits = 0
    for i, taken in enumerate(branches):
        if taken:
            bits |= 1 << i
    hints = access.hints
    flags = 0
    if access.is_load:
        flags |= _FLAG_IS_LOAD
    if access.depends_on_prev:
        flags |= _FLAG_DEPENDS
    if hints is not NO_HINTS and hints != NO_HINTS:
        flags |= _FLAG_HINTED
    if not (
        0 <= access.addr <= _U64_MAX
        and 0 <= access.pc <= _U64_MAX
        and _I64_MIN <= access.reg_value <= _I64_MAX
        and _I64_MIN <= access.value <= _I64_MAX
        and 0 <= access.inst_gap <= _U32_MAX
        and 0 <= hints.type_id <= _U32_MAX
        and 0 <= hints.link_offset <= _U32_MAX
        and 0 <= int(hints.ref_form) <= 0xFF
    ):
        raise TraceStoreError(
            f"access at pc {access.pc:#x} has a field outside the record "
            "format's range"
        )
    return _RECORD_STRUCT.pack(
        access.addr,
        access.pc,
        access.reg_value,
        access.value,
        bits,
        access.inst_gap,
        hints.type_id,
        hints.link_offset,
        count,
        flags,
        int(hints.ref_form),
    )


#: the branch tuples and hint records of a trace repeat heavily; interning
#: them makes decoded traces cheaper than built ones (shared immutables)
_EMPTY_BRANCHES: tuple[bool, ...] = ()


class _Interner:
    """Per-reader memo for branch tuples and hint records."""

    __slots__ = ("branches", "hints")

    def __init__(self) -> None:
        self.branches: dict[tuple[int, int], tuple[bool, ...]] = {}
        self.hints: dict[tuple[int, int, int], SemanticHints] = {}

    def branch_tuple(self, count: int, bits: int) -> tuple[bool, ...]:
        if not count:
            return _EMPTY_BRANCHES
        key = (count, bits)
        out = self.branches.get(key)
        if out is None:
            out = tuple(bool(bits >> i & 1) for i in range(count))
            self.branches[key] = out
        return out

    def hint_record(
        self, type_id: int, link_offset: int, ref_form: int
    ) -> SemanticHints:
        key = (type_id, link_offset, ref_form)
        out = self.hints.get(key)
        if out is None:
            out = SemanticHints(
                type_id=type_id,
                link_offset=link_offset,
                ref_form=RefForm(ref_form),
            )
            self.hints[key] = out
        return out


def _decode_records(
    buffer: bytes | mmap.mmap,
    offset: int,
    count: int,
    interner: _Interner,
) -> Iterator[MemoryAccess]:
    end = offset + count * RECORD_SIZE
    branch_tuple = interner.branch_tuple
    hint_record = interner.hint_record
    # positional construction in dataclass field order — the decode loop
    # runs once per record, so kwarg plumbing is measurable overhead
    for (
        addr,
        pc,
        reg_value,
        value,
        branch_bits,
        inst_gap,
        type_id,
        link_offset,
        branch_count,
        flags,
        ref_form,
    ) in _RECORD_STRUCT.iter_unpack(memoryview(buffer)[offset:end]):
        yield MemoryAccess(
            addr,
            pc,
            bool(flags & _FLAG_IS_LOAD),
            inst_gap,
            bool(flags & _FLAG_DEPENDS),
            branch_tuple(branch_count, branch_bits) if branch_count else _EMPTY_BRANCHES,
            reg_value,
            value,
            (
                hint_record(type_id, link_offset, ref_form)
                if flags & _FLAG_HINTED
                else NO_HINTS
            ),
        )


# ----------------------------------------------------------------------
# file writer / reader


@dataclass(frozen=True)
class TraceMeta:
    """Header metadata of one store file (cheap to read: no records)."""

    path: Path
    workload: str
    fingerprint: str  # content hash of the access stream (cache-key fp)
    source: str  # workloads_fingerprint() at compile time
    records: int
    version: int = STORE_VERSION

    @property
    def size_bytes(self) -> int:
        return HEADER_SIZE + len(self._meta_json()) + self.records * RECORD_SIZE

    def _meta_json(self) -> bytes:
        payload = {
            "workload": self.workload,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "records": self.records,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )


def write_trace(
    path: str | Path,
    trace: Sequence[MemoryAccess],
    *,
    workload: str,
    fingerprint: str | None = None,
    source: str | None = None,
) -> TraceMeta:
    """Compile ``trace`` into a store file (atomic write-temp-then-rename).

    ``fingerprint`` defaults to :func:`trace_fingerprint` of the stream —
    the same content hash the result cache keys on, so a store-supplied
    trace produces identical cache keys to an in-memory one.
    """
    path = Path(path)
    meta = TraceMeta(
        path=path,
        workload=workload,
        fingerprint=fingerprint or trace_fingerprint(trace),
        source=source if source is not None else workloads_fingerprint(),
        records=len(trace),
    )
    meta_json = meta._meta_json()
    header = _HEADER_STRUCT.pack(MAGIC, STORE_VERSION, len(meta_json), len(trace))
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fp:
            fp.write(header)
            fp.write(meta_json)
            for access in trace:
                fp.write(_encode_record(access))
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError as cleanup_exc:
            log.debug("trace store: temp file %s not removed: %s", tmp, cleanup_exc)
        raise TraceStoreError(f"cannot write trace store {path}: {exc}") from exc
    return meta


def _read_header(fp, path: Path) -> tuple[TraceMeta, int]:
    """Validated (meta, payload offset); raises :class:`TraceStoreError`."""
    raw = fp.read(HEADER_SIZE)
    if len(raw) != HEADER_SIZE:
        raise TraceStoreError(f"{path}: truncated header")
    magic, version, meta_len, count = _HEADER_STRUCT.unpack(raw)
    if magic != MAGIC:
        raise TraceStoreError(f"{path}: not a repro trace store file")
    if version != STORE_VERSION:
        raise TraceStoreError(
            f"{path}: store version {version} (this build reads "
            f"version {STORE_VERSION})"
        )
    meta_raw = fp.read(meta_len)
    if len(meta_raw) != meta_len:
        raise TraceStoreError(f"{path}: truncated metadata block")
    try:
        meta = json.loads(meta_raw)
        workload = meta["workload"]
        fingerprint = meta["fingerprint"]
        source = meta["source"]
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceStoreError(f"{path}: malformed metadata block: {exc}") from exc
    return (
        TraceMeta(
            path=path,
            workload=workload,
            fingerprint=fingerprint,
            source=source,
            records=count,
            version=version,
        ),
        HEADER_SIZE + meta_len,
    )


def read_meta(path: str | Path) -> TraceMeta:
    """Header metadata only — validates magic/version/size, skips records."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fp:
            meta, offset = _read_header(fp, path)
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise TraceStoreError(f"{path}: unreadable: {exc}") from exc
    expected = offset + meta.records * RECORD_SIZE
    if size != expected:
        raise TraceStoreError(
            f"{path}: size {size} != expected {expected} "
            f"({meta.records} records of {RECORD_SIZE} bytes) — truncated "
            "or corrupt"
        )
    return meta


class TraceReader(Sequence[MemoryAccess]):
    """mmap-backed lazy view of one store file.

    Sequence protocol over lazily decoded records: ``len``, indexing,
    slicing (returns a list) and iteration, so a reader can stand in for
    a workload's trace list anywhere the simulator consumes one.  Bytes
    are paged in by the OS on first touch; nothing is decoded until
    accessed.  Use :meth:`materialize` when a run will touch every
    record anyway — one pass of batch decoding beats per-index calls.
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        self.meta = read_meta(path)  # validates before we map
        self._offset = self.meta.size_bytes - self.meta.records * RECORD_SIZE
        try:
            with open(path, "rb") as fp:
                if self.meta.records:
                    self._map: mmap.mmap | bytes = mmap.mmap(
                        fp.fileno(), 0, access=mmap.ACCESS_READ
                    )
                else:
                    self._map = b""
        except (OSError, ValueError) as exc:
            raise TraceStoreError(f"{path}: cannot map: {exc}") from exc
        self._interner = _Interner()

    # -- Sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return self.meta.records

    def __iter__(self) -> Iterator[MemoryAccess]:
        return _decode_records(
            self._map, self._offset, self.meta.records, self._interner
        )

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            start, stop, step = index.indices(self.meta.records)
            if step == 1:
                count = max(0, stop - start)
                return list(
                    _decode_records(
                        self._map,
                        self._offset + start * RECORD_SIZE,
                        count,
                        self._interner,
                    )
                )
            return [self[i] for i in range(start, stop, step)]
        if index < 0:
            index += self.meta.records
        if not 0 <= index < self.meta.records:
            raise IndexError(index)
        return next(
            _decode_records(
                self._map, self._offset + index * RECORD_SIZE, 1, self._interner
            )
        )

    # ------------------------------------------------------------------

    def materialize(self, limit: int | None = None) -> list[MemoryAccess]:
        """Decode the first ``limit`` records (all when ``None``) eagerly."""
        count = self.meta.records if limit is None else min(limit, self.meta.records)
        return list(_decode_records(self._map, self._offset, count, self._interner))

    def as_array(self, limit: int | None = None):
        """Records as a read-only numpy struct array (zero-copy from the mmap).

        The array is a view over the mapped file using :func:`record_dtype`
        — no bytes are decoded or copied; keep the reader open while the
        array is alive.  The native simulation kernel feeds from this view.
        Raises :class:`TraceStoreError` when numpy is unavailable (callers
        degrade to the scalar decoder and must log the fallback).
        """
        try:
            dtype = record_dtype()
        except ImportError as exc:
            raise TraceStoreError(f"numpy unavailable for array decode: {exc}") from exc
        import numpy

        count = self.meta.records if limit is None else min(limit, self.meta.records)
        if count <= 0:
            return numpy.empty(0, dtype=dtype)
        return numpy.frombuffer(self._map, dtype=dtype, count=count, offset=self._offset)

    def close(self) -> None:
        if isinstance(self._map, mmap.mmap):
            self._map.close()
            self._map = b""


def read_trace(
    path: str | Path,
    *,
    limit: int | None = None,
    expect_fingerprint: str | None = None,
) -> list[MemoryAccess]:
    """Decode a store file into a list (the worker-side entry point).

    ``expect_fingerprint`` guards a file swapped between job submission
    and execution: a mismatch raises, and the caller rebuilds instead of
    silently simulating the wrong trace.
    """
    reader = TraceReader(path)
    try:
        if (
            expect_fingerprint is not None
            and reader.meta.fingerprint != expect_fingerprint
        ):
            raise TraceStoreError(
                f"{path}: fingerprint {reader.meta.fingerprint[:12]}… does not "
                f"match the expected {expect_fingerprint[:12]}…"
            )
        return reader.materialize(limit)
    finally:
        reader.close()


# ----------------------------------------------------------------------
# the content-addressed store directory


@dataclass(frozen=True)
class StoredTrace:
    """What a sweep job ships instead of a pickled trace."""

    path: str
    fingerprint: str
    records: int


class TraceStore:
    """Directory of compiled traces, content-addressed by source + name."""

    def __init__(self, root: str | Path = DEFAULT_TRACE_DIR):
        self.root = Path(root)
        #: corrupt/stale files this instance healed by recompiling;
        #: sweeps diff it to roll degrade events into their summary
        self.heals = 0

    def path_for(self, workload: str) -> Path:
        digest = hashlib.sha256(
            json.dumps(
                [STORE_VERSION, workloads_fingerprint(), workload],
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()
        safe = workload.replace("/", "_")
        return self.root / f"{safe}-{digest[:16]}.rpt"

    # ------------------------------------------------------------------

    def ensure(
        self, workload: str, *, build: "WorkloadSpec | None" = None
    ) -> tuple[StoredTrace, list[MemoryAccess] | None]:
        """The store file for ``workload``, compiling it on a miss.

        Returns ``(ref, trace_or_None)``: the trace list comes back
        non-``None`` exactly when this call had to build it, so callers
        can reuse the in-memory copy instead of re-decoding the file
        they just wrote.  Corrupt or stale files are recompiled in
        place; an unwritable store directory raises
        :class:`TraceStoreError` (callers fall back to in-memory
        shipping).
        """
        path = self.path_for(workload)
        try:
            meta = read_meta(path)
        except FileNotFoundError:
            pass  # cold miss: expected, compiled below
        except TraceStoreError as exc:
            self.heals += 1
            log.warning(
                "trace store: %s is corrupt or stale (%s); recompiling %s",
                path,
                exc,
                workload,
            )
        else:
            return (
                StoredTrace(
                    path=str(path),
                    fingerprint=meta.fingerprint,
                    records=meta.records,
                ),
                None,
            )
        if build is None:
            from repro.workloads.suites import get_workload

            build = get_workload(workload)
        trace = build.build().trace()
        meta = write_trace(path, trace, workload=workload)
        return (
            StoredTrace(
                path=str(path), fingerprint=meta.fingerprint, records=meta.records
            ),
            trace,
        )

    def compile(
        self, workload: str, *, force: bool = False
    ) -> tuple[TraceMeta, bool]:
        """Compile one registry workload; ``(meta, compiled-this-call?)``."""
        from repro.workloads.suites import get_workload

        spec = get_workload(workload)
        path = self.path_for(workload)
        if not force:
            try:
                return read_meta(path), False
            except FileNotFoundError:
                pass  # cold miss: expected, compiled below
            except TraceStoreError as exc:
                self.heals += 1
                log.warning(
                    "trace store: %s is corrupt or stale (%s); recompiling %s",
                    path,
                    exc,
                    workload,
                )
        trace = spec.build().trace()
        return write_trace(path, trace, workload=workload), True

    # ------------------------------------------------------------------

    def entries(self) -> list[tuple[Path, TraceMeta | None, str]]:
        """Every ``*.rpt`` in the store: (path, meta-or-None, status).

        Status is ``"ok"`` for a valid current-generation file,
        ``"stale"`` for a valid file no current workload addresses
        (old source/version generations), and an error string for
        corrupt files.
        """
        from repro.workloads.suites import all_workloads

        current = {self.path_for(spec.name) for spec in all_workloads()}
        out: list[tuple[Path, TraceMeta | None, str]] = []
        for path in sorted(self.root.glob("*.rpt")):
            try:
                meta = read_meta(path)
            except (TraceStoreError, FileNotFoundError, OSError) as exc:
                log.warning("trace store: unreadable entry %s: %s", path, exc)
                out.append((path, None, str(exc)))
                continue
            status = "ok" if path in current else "stale"
            out.append((path, meta, status))
        return out

    def gc(self, *, dry_run: bool = False) -> tuple[int, list[Path]]:
        """Drop stale and corrupt files; ``(kept, removed paths)``.

        Current-generation files are kept; anything content-addressed by
        an older source fingerprint or store version — plus anything
        unreadable — is removed.  Temp files from dead writers go too.
        """
        kept = 0
        removed: list[Path] = []
        for path, meta, status in self.entries():
            if status == "ok":
                kept += 1
                continue
            removed.append(path)
            if not dry_run:
                try:
                    path.unlink(missing_ok=True)
                except OSError as exc:
                    log.warning("trace store: gc cannot remove %s: %s", path, exc)
        for tmp in sorted(self.root.glob("*.tmp.*")):
            removed.append(tmp)
            if not dry_run:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError as exc:
                    log.warning("trace store: gc cannot remove %s: %s", tmp, exc)
        return kept, removed


def resolve_store(
    store: "TraceStore | Path | str | bool | None",
    default: TraceStore | None = None,
) -> TraceStore | None:
    """Normalize the user-facing ``store`` argument (mirrors the cache).

    ``None`` → the configured ``default``; ``False`` → store off;
    ``True`` → the default on-disk location; a path → a store rooted
    there; a :class:`TraceStore` → itself.
    """
    if store is None:
        return default
    if store is False:
        return None
    if store is True:
        return TraceStore(DEFAULT_TRACE_DIR)
    if isinstance(store, TraceStore):
        return store
    return TraceStore(Path(store))


__all__ = [
    "DEFAULT_TRACE_DIR",
    "RECORD_FIELDS",
    "RECORD_FORMAT",
    "RECORD_SIZE",
    "STORE_VERSION",
    "StoredTrace",
    "TraceMeta",
    "TraceReader",
    "TraceStore",
    "TraceStoreError",
    "read_meta",
    "read_trace",
    "record_dtype",
    "record_layout_hash",
    "resolve_store",
    "workloads_fingerprint",
    "write_trace",
]
