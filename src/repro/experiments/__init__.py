"""Experiment harness: one module per evaluation figure of the paper.

Every module exposes ``run(...)`` returning plain data and ``render(...)``
returning a paper-style text table, plus a ``main()`` so it can be run as
``python -m repro.experiments.fig12_speedup``.  The shared sweep machinery
lives in :mod:`repro.experiments.sweep`.

| Module                  | Reproduces                                    |
|-------------------------|-----------------------------------------------|
| fig01_semantic_locality | Fig. 1 — listsort physical vs logical order   |
| fig05_reward            | Fig. 5 — the bell-shaped reward function      |
| fig08_hit_depth_cdf     | Fig. 8 — CDF of prefetch hit depths           |
| fig09_accuracy          | Fig. 9 — access-benefit classification        |
| fig10_l1_mpki           | Fig. 10 — L1 MPKI per prefetcher              |
| fig11_l2_mpki           | Fig. 11 — L2 MPKI per prefetcher              |
| fig12_speedup           | Fig. 12 — IPC speedups over no prefetching    |
| fig13_storage_sweep     | Fig. 13 — speedup vs CST storage size         |
| fig14_layout_agnostic   | Fig. 14 — naive vs spatially optimised layouts|
| tables                  | Tables 1–3 — attributes, config, workloads    |
| ablations               | design-choice ablations + §8 extensions       |
| sensitivity             | continuous-knob sensitivity sweep             |
| convergence             | §7.1's learning trajectory (prose claim)      |
| robustness              | seed-stability of the headline speedups       |
| suite_summary           | per-suite geomeans (the paper's narrative)    |
| characterization        | §6's workload/phase characterization          |
"""

from repro.experiments import (
    ablations,
    characterization,
    convergence,
    fig01_semantic_locality,
    fig05_reward,
    fig08_hit_depth_cdf,
    fig09_accuracy,
    fig10_l1_mpki,
    fig11_l2_mpki,
    fig12_speedup,
    fig13_storage_sweep,
    fig14_layout_agnostic,
    robustness,
    sensitivity,
    suite_summary,
    tables,
)
from repro.experiments import sweep
from repro.experiments.sweep import standard_sweep

__all__ = [
    "ablations",
    "characterization",
    "convergence",
    "fig01_semantic_locality",
    "fig05_reward",
    "fig08_hit_depth_cdf",
    "fig09_accuracy",
    "fig10_l1_mpki",
    "fig11_l2_mpki",
    "fig12_speedup",
    "fig13_storage_sweep",
    "fig14_layout_agnostic",
    "robustness",
    "sensitivity",
    "suite_summary",
    "standard_sweep",
    "sweep",
    "tables",
]
