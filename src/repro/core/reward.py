"""The bell-shaped reward function (Section 4.3, Figure 5).

A prediction is rewarded according to the *hit depth*: the number of demand
accesses between issuing the prefetch and the demand access that used it.
Hits inside the effective prefetch window (18–50 accesses by default) earn
a positive, bell-shaped reward peaking at the target distance; hits outside
the window — too late to hide latency, or so early the line risks eviction —
earn negative rewards that demote stale context-address pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def target_prefetch_distance(
    l2_latency: float,
    l2_miss_rate: float,
    dram_latency: float,
    ipc: float,
    prob_mem_op: float,
) -> float:
    """The paper's two-step target-distance estimate (Section 4.3).

    First the average L1 miss penalty in cycles::

        L1 miss penalty = L2 latency + L2 miss rate × DRAM latency

    then its conversion to a number of demand accesses::

        prefetch distance = L1 miss penalty × IPC × Prob(mem op)

    For the paper's benchmarks this lands between ~10 and ~90 accesses with
    an average of ~30, which is where the default reward bell is centred.
    """
    if not 0.0 <= l2_miss_rate <= 1.0:
        raise ValueError("l2_miss_rate must be a probability")
    if not 0.0 <= prob_mem_op <= 1.0:
        raise ValueError("prob_mem_op must be a probability")
    penalty = l2_latency + l2_miss_rate * dram_latency
    return penalty * ipc * prob_mem_op


@dataclass(frozen=True)
class RewardFunction:
    """Bell-shaped reward over hit depth, with negative edges.

    ``lo``/``hi`` bound the positive window, ``center`` is the bell's peak
    position, ``peak`` its height.  Depths below ``lo`` score
    ``late_penalty`` (the prefetch could not complete in time); depths
    above ``hi`` — including queue expiry — score ``early_penalty``.
    """

    lo: int = 18
    hi: int = 50
    center: int = 30
    peak: int = 8
    late_penalty: int = -1
    early_penalty: int = -2

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError("empty reward window")
        if not self.lo <= self.center <= self.hi:
            raise ValueError("center outside window")
        if self.peak < 1:
            raise ValueError("peak must be positive")
        if self.late_penalty >= 0 or self.early_penalty >= 0:
            raise ValueError("edge penalties must be negative")
        # the bell denominator 2σ² is fixed by the window parameters; the
        # feedback unit evaluates the bell on every in-window hit, so
        # precompute it (object.__setattr__ because the dataclass is frozen).
        # peak == 1 keeps the degenerate 0.0 so division still fails at
        # call time, as the on-demand σ computation did.
        denom = 0.0
        if self.peak > 1:
            sigma = self._sigma
            denom = 2 * sigma**2
        object.__setattr__(self, "_bell_denom", denom)

    @property
    def _sigma(self) -> float:
        # Spread the bell so it tapers to ~1 at the window edges.
        half = max(self.center - self.lo, self.hi - self.center)
        return half / math.sqrt(2.0 * math.log(self.peak))

    def __call__(self, depth: int) -> int:
        """Reward for a hit ``depth`` accesses after the prediction."""
        if depth < 0:
            raise ValueError("hit depth cannot be negative")
        if depth < self.lo:
            return self.late_penalty
        if depth > self.hi:
            return self.early_penalty
        value = self.peak * math.exp(-((depth - self.center) ** 2) / self._bell_denom)
        return max(1, round(value))

    def expiry_reward(self) -> int:
        """Reward applied when a prediction expires without ever hitting."""
        return self.early_penalty

    def curve(self, max_depth: int = 80) -> list[tuple[int, int]]:
        """The (depth, reward) series of Figure 5, for plotting/reports."""
        return [(d, self(d)) for d in range(max_depth + 1)]


@dataclass(frozen=True)
class FlatRewardFunction(RewardFunction):
    """Ablation variant: constant positive reward across the window.

    Keeps the negative edges but drops the bell, so the learner no longer
    prefers predictions aligned to the target distance — isolating the
    value of the bell shape (DESIGN.md ablation list).
    """

    def __call__(self, depth: int) -> int:
        if depth < 0:
            raise ValueError("hit depth cannot be negative")
        if depth < self.lo:
            return self.late_penalty
        if depth > self.hi:
            return self.early_penalty
        return max(1, self.peak // 2)
