"""Round-trip and robustness tests for the binary trace store.

The store is only allowed to change *where* a trace comes from, never
*what* it contains: a decoded record must be field-for-field equal —
hints, branch tuples, flags and all — to what ``TraceBuilder`` produced.
The round-trip class proves that for every registry workload; the
robustness classes prove that corrupt, truncated or version-skewed
files raise :class:`TraceStoreError` from the read path while
:meth:`TraceStore.ensure` and the sweep engine degrade to rebuilding.
"""

from __future__ import annotations

import dataclasses
import struct

import pytest

from repro.hints import NO_HINTS
from repro.workloads.serialize import trace_fingerprint
from repro.workloads.store import (
    HEADER_SIZE,
    MAGIC,
    RECORD_SIZE,
    STORE_VERSION,
    TraceReader,
    TraceStore,
    TraceStoreError,
    read_meta,
    read_trace,
    record_layout_hash,
    write_trace,
)
from repro.workloads.suites import all_workloads, get_workload

REGISTRY_NAMES = [spec.name for spec in all_workloads()]


def assert_traces_identical(decoded, built, where: str) -> None:
    """Field-for-field equality, with a readable first-divergence report."""
    assert len(decoded) == len(built), where
    for i, (a, b) in enumerate(zip(decoded, built)):
        if a != b:
            for field in dataclasses.fields(type(b)):
                assert getattr(a, field.name) == getattr(b, field.name), (
                    f"{where}: record {i} field {field.name!r} differs"
                )
        assert a == b, f"{where}: record {i} differs"


class TestRoundTrip:
    @pytest.mark.parametrize("name", REGISTRY_NAMES)
    def test_registry_workload_round_trips(self, name, tmp_path):
        built = get_workload(name).build().trace()
        meta = write_trace(tmp_path / "t.rpt", built, workload=name)
        assert meta.records == len(built)
        decoded = read_trace(tmp_path / "t.rpt")
        assert_traces_identical(decoded, built, name)

    def test_hints_payload_survives(self, tmp_path):
        # the context prefetcher consumes hints; losing them would be a
        # silent semantic change, not a crash — check them explicitly
        built = get_workload("list").build().trace()
        hinted = [a for a in built if a.hints is not NO_HINTS]
        assert hinted, "list workload is expected to carry hints"
        decoded = read_trace(write_trace(
            tmp_path / "t.rpt", built, workload="list"
        ).path)
        for a, b in zip(decoded, built):
            assert a.hints.type_id == b.hints.type_id
            assert a.hints.link_offset == b.hints.link_offset
            assert a.hints.ref_form == b.hints.ref_form
        # unhinted records decode to the shared NO_HINTS sentinel
        assert all(
            a.hints is NO_HINTS
            for a, b in zip(decoded, built)
            if b.hints is NO_HINTS
        )

    def test_fingerprint_matches_cache_key_fingerprint(self, tmp_path):
        # store-supplied traces must produce the same result-cache keys
        # as in-memory ones: the header fingerprint IS trace_fingerprint
        built = get_workload("array").build().trace()
        meta = write_trace(tmp_path / "t.rpt", built, workload="array")
        assert meta.fingerprint == trace_fingerprint(built)
        assert read_meta(tmp_path / "t.rpt").fingerprint == meta.fingerprint

    def test_empty_trace_round_trips(self, tmp_path):
        meta = write_trace(tmp_path / "e.rpt", [], workload="empty")
        assert meta.records == 0
        assert read_trace(tmp_path / "e.rpt") == []

    def test_reader_sequence_protocol(self, tmp_path):
        built = get_workload("array").build().trace()[:500]
        write_trace(tmp_path / "t.rpt", built, workload="array")
        reader = TraceReader(tmp_path / "t.rpt")
        try:
            assert len(reader) == 500
            assert reader[0] == built[0]
            assert reader[499] == built[499]
            assert reader[-1] == built[-1]
            assert reader[10:20] == built[10:20]
            assert reader[::100] == built[::100]
            with pytest.raises(IndexError):
                reader[500]
            assert list(reader) == built
            assert reader.materialize(50) == built[:50]
        finally:
            reader.close()

    def test_read_trace_limit(self, tmp_path):
        built = get_workload("array").build().trace()[:300]
        write_trace(tmp_path / "t.rpt", built, workload="array")
        assert read_trace(tmp_path / "t.rpt", limit=40) == built[:40]
        assert read_trace(tmp_path / "t.rpt", limit=10_000) == built


class TestValidation:
    def _write_one(self, tmp_path):
        built = get_workload("array").build().trace()[:200]
        path = tmp_path / "t.rpt"
        write_trace(path, built, workload="array")
        return path

    def test_truncated_records_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        path.write_bytes(path.read_bytes()[: -RECORD_SIZE // 2])
        with pytest.raises(TraceStoreError, match="truncated or corrupt"):
            read_meta(path)
        with pytest.raises(TraceStoreError):
            read_trace(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        path.write_bytes(path.read_bytes()[: HEADER_SIZE - 4])
        with pytest.raises(TraceStoreError, match="truncated header"):
            read_meta(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        path.write_bytes(b"NOTATRCE" + path.read_bytes()[8:])
        with pytest.raises(TraceStoreError, match="not a repro trace store"):
            read_meta(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[8:12] = struct.pack("<I", STORE_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceStoreError, match="store version"):
            read_meta(path)

    def test_malformed_metadata_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = bytearray(path.read_bytes())
        _, _, meta_len, _ = struct.unpack_from("<8sIIQ", raw)
        raw[HEADER_SIZE : HEADER_SIZE + meta_len] = b"x" * meta_len
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceStoreError, match="malformed metadata"):
            read_meta(path)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        with pytest.raises(TraceStoreError, match="does not match"):
            read_trace(path, expect_fingerprint="0" * 64)

    def test_out_of_range_field_rejected(self, tmp_path):
        access = get_workload("array").build().trace()[0]
        bad = dataclasses.replace(access, addr=1 << 64)
        with pytest.raises(TraceStoreError, match="outside the record"):
            write_trace(tmp_path / "t.rpt", [bad], workload="bad")


class TestStoreDirectory:
    def test_ensure_compiles_once_then_reuses(self, tmp_path):
        store = TraceStore(tmp_path)
        ref, built = store.ensure("array")
        assert built is not None  # this call compiled it
        again, rebuilt = store.ensure("array")
        assert rebuilt is None  # warm: header read only
        assert again.path == ref.path
        assert again.fingerprint == ref.fingerprint

    def test_ensure_recompiles_corrupt_file(self, tmp_path):
        store = TraceStore(tmp_path)
        ref, _ = store.ensure("array")
        path = store.path_for("array")
        path.write_bytes(path.read_bytes()[: RECORD_SIZE * 3])
        healed, rebuilt = store.ensure("array")
        assert rebuilt is not None  # corruption forced a recompile
        assert healed.fingerprint == ref.fingerprint
        assert read_meta(path).records == healed.records

    def test_path_for_tracks_source_generation(self, tmp_path, monkeypatch):
        import repro.workloads.store as store_mod

        store = TraceStore(tmp_path)
        before = store.path_for("array")
        monkeypatch.setattr(
            store_mod, "_source_fingerprint_cache", "f" * 64
        )
        assert store.path_for("array") != before

    def test_entries_and_gc(self, tmp_path, monkeypatch):
        import repro.workloads.store as store_mod

        store = TraceStore(tmp_path)
        store.ensure("array")
        # a file from an older source generation: valid but unreferenced
        stale = tmp_path / "old-0123456789abcdef.rpt"
        built = get_workload("list").build().trace()[:50]
        write_trace(stale, built, workload="list", source="0" * 64)
        # a corrupt file and a leftover temp file
        corrupt = tmp_path / "junk-ffffffffffffffff.rpt"
        corrupt.write_bytes(b"garbage")
        leftover = tmp_path / "array.tmp.12345"
        leftover.write_bytes(b"partial")

        statuses = {path.name: status for path, _, status in store.entries()}
        assert statuses[store.path_for("array").name] == "ok"
        assert statuses[stale.name] == "stale"
        assert "truncated header" in statuses[corrupt.name]

        kept, removed = store.gc(dry_run=True)
        assert kept == 1 and stale.exists() and corrupt.exists()
        kept, removed = store.gc()
        assert kept == 1
        assert {p.name for p in removed} == {
            stale.name, corrupt.name, leftover.name
        }
        assert store.path_for("array").exists()
        assert not stale.exists() and not corrupt.exists()
        assert not leftover.exists()

    def test_layout_hash_is_stable(self):
        # the PERF002 pin: changing RECORD_FIELDS changes this hash
        assert record_layout_hash() == record_layout_hash()
        assert record_layout_hash((("a", "Q"),)) != record_layout_hash()

    def test_store_version_in_path(self, tmp_path):
        # content addressing covers the version: a bump re-keys every file
        assert MAGIC == b"RPTRACE\x00"
        store = TraceStore(tmp_path)
        name = store.path_for("array").name
        assert name.startswith("array-") and name.endswith(".rpt")


class TestNumpyDecode:
    """The struct-array view (``as_array``) against the scalar decoder.

    The native kernel feeds from the numpy view, so any divergence
    between the two decoders would silently change simulation inputs.
    Every registry workload round-trips field-for-field; the degrade
    tests prove the decode layer *logs and falls back* (rule FLW) rather
    than raising when a stream cannot be represented.
    """

    @pytest.mark.parametrize("name", REGISTRY_NAMES)
    def test_registry_workload_array_matches_records(self, name, tmp_path):
        np = pytest.importorskip("numpy")
        built = get_workload(name).build().trace()
        write_trace(tmp_path / "t.rpt", built, workload=name)
        # no close(): the struct array is a live view over the mmap, so
        # closing under it raises BufferError; the reader is GC-owned here
        reader = TraceReader(tmp_path / "t.rpt")
        arr = reader.as_array()
        assert arr.shape[0] == len(built)
        assert arr["addr"].tolist() == [a.addr for a in built]
        assert arr["pc"].tolist() == [a.pc for a in built]
        assert arr["reg_value"].tolist() == [a.reg_value for a in built]
        assert arr["value"].tolist() == [a.value for a in built]
        assert arr["inst_gap"].tolist() == [a.inst_gap for a in built]
        expected_bits = [
            sum(1 << i for i, taken in enumerate(a.branches) if taken)
            for a in built
        ]
        assert arr["branch_bits"].tolist() == expected_bits
        assert arr["branch_count"].tolist() == [len(a.branches) for a in built]
        expected_flags = [
            (1 if a.is_load else 0)
            | (2 if a.depends_on_prev else 0)
            | (4 if a.hints != NO_HINTS else 0)
            for a in built
        ]
        assert arr["flags"].tolist() == expected_flags
        # SemanticHints payload columns (NO_HINTS encodes as zeros)
        assert arr["type_id"].tolist() == [a.hints.type_id for a in built]
        assert arr["link_offset"].tolist() == [
            a.hints.link_offset for a in built
        ]
        assert arr["ref_form"].tolist() == [
            int(a.hints.ref_form) for a in built
        ]
        # the view really is zero-copy over the mapped record block
        assert not arr.flags.owndata
        assert np.shares_memory(arr, np.frombuffer(reader._map, dtype="u1"))

    def test_hinted_workload_has_hint_payloads(self, tmp_path):
        # a workload with semantic hints must carry them into the array
        # view — all-zero hint columns would mean a silently lossy codec
        pytest.importorskip("numpy")
        built = get_workload("list").build().trace()
        write_trace(tmp_path / "t.rpt", built, workload="list")
        # GC-owned reader: closing under a live array view raises
        reader = TraceReader(tmp_path / "t.rpt")
        arr = reader.as_array()
        hinted = (arr["flags"] & 4) != 0
        assert bool(hinted.any()), "list workload is expected to be hinted"
        assert int(arr["type_id"][hinted].max()) > 0 or int(
            arr["link_offset"][hinted].max()
        ) > 0

    def test_as_array_limit_and_empty(self, tmp_path):
        pytest.importorskip("numpy")
        built = get_workload("array").build().trace()[:300]
        write_trace(tmp_path / "t.rpt", built, workload="array")
        reader = TraceReader(tmp_path / "t.rpt")
        try:
            assert reader.as_array(40).shape[0] == 40
            assert reader.as_array(10_000).shape[0] == 300
            assert reader.as_array(0).shape[0] == 0
        finally:
            reader.close()
        write_trace(tmp_path / "e.rpt", [], workload="empty")
        empty = TraceReader(tmp_path / "e.rpt")
        try:
            assert empty.as_array().shape[0] == 0
        finally:
            empty.close()

    def test_columns_from_reader_matches_scalar_decode(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.sim.native.decode import columns_from_reader

        built = get_workload("list").build().trace()[:500]
        write_trace(tmp_path / "t.rpt", built, workload="list")
        # GC-owned reader: closing under the columns' views raises
        reader = TraceReader(tmp_path / "t.rpt")
        cols = columns_from_reader(reader, 400, 64)
        assert cols is not None and cols.n == 400
        assert cols.addrs.tolist() == [a.addr for a in built[:400]]
        assert cols.lines.tolist() == [a.addr // 64 for a in built[:400]]
        expected_flags = [
            (1 if a.is_load else 0)
            | (2 if a.depends_on_prev else 0)
            | (4 if a.hints != NO_HINTS else 0)
            for a in built[:400]
        ]
        assert cols.flags.tolist() == expected_flags

    def test_corrupt_array_view_degrades_with_log(self, caplog):
        # a reader whose record block cannot be viewed (truncation found
        # at array-decode time) must LOG and return None — never raise —
        # so the simulator falls back to the interpreted path (rule FLW)
        pytest.importorskip("numpy")
        from repro.sim.native.decode import columns_from_reader

        class _BadReader:
            def as_array(self, limit=None):
                raise TraceStoreError("record block truncated or corrupt")

        with caplog.at_level("WARNING", logger="repro.sim.native.decode"):
            assert columns_from_reader(_BadReader(), None, 64) is None
        assert any(
            "array view failed" in rec.message for rec in caplog.records
        )

    def test_out_of_range_stream_degrades_with_log(self, caplog):
        pytest.importorskip("numpy")
        from repro.sim.native.decode import columns_from_accesses
        from repro.workloads.trace import MemoryAccess

        beyond_modelled = [MemoryAccess(addr=1 << 50, pc=0x400000)]
        with caplog.at_level("WARNING", logger="repro.sim.native.decode"):
            assert columns_from_accesses(beyond_modelled, 64) is None
        assert any("48-bit" in rec.message for rec in caplog.records)

        caplog.clear()
        beyond_u64 = [MemoryAccess(addr=0, pc=0x400000, inst_gap=1 << 40)]
        with caplog.at_level("WARNING", logger="repro.sim.native.decode"):
            assert columns_from_accesses(beyond_u64, 64) is None
        assert any(
            "value ranges" in rec.message for rec in caplog.records
        )

    def test_native_sweep_cell_survives_corrupt_store_file(self, tmp_path):
        # end-to-end degrade: a native job pointed at a truncated store
        # file must rebuild the trace and still produce the interpreted
        # result, never crash the sweep
        from repro.sim.parallel import SweepJob, run_job

        built = get_workload("array").build().trace()[:200]
        path = tmp_path / "t.rpt"
        write_trace(path, built, workload="array")
        path.write_bytes(path.read_bytes()[: -RECORD_SIZE // 2])
        job = SweepJob(
            index=0,
            workload="array",
            prefetcher="stride",
            limit=200,
            store_path=str(path),
            store_fingerprint=trace_fingerprint(built),
            native=True,
        )
        reference = SweepJob(
            index=0, workload="array", prefetcher="stride", limit=200
        )
        assert run_job(job) == run_job(reference)
