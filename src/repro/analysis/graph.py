"""Project-wide semantic model: import graph, symbol tables, call graph.

``SemanticModel.build`` turns a parsed :class:`~repro.analysis.visitor.
Project` into a queryable model of the package:

* **modules** — one :class:`ModuleInfo` per file, with its dotted name,
  resolved imports (``local alias -> dotted target``), top-level
  functions/classes, module-level mutable globals, and enum classes;
* **import graph** — which project modules each module imports
  (``imports_of`` / ``importers_of``);
* **call graph** — an approximate, static function-level graph: direct
  calls, ``from``-imported calls, ``module.function`` calls, ``self``
  method calls, constructor calls, and method calls through locals whose
  class was inferred from a constructor assignment.  Dynamic dispatch
  (callbacks, factories, ``getattr``) is *not* resolved — the graph
  under-approximates, which is the safe direction for the reachability
  queries the RACE rules run (a hazard inside an unresolvable callback
  is missed, never invented).

The model is built once per analysis run and cached on the project
(:meth:`Project.semantic`), so every rule family shares one build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.visitor import Project, SourceFile

#: builtin constructors whose results are mutable containers
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)

#: base-class names that make a ClassDef an enumeration
ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})

#: executor/pool methods whose first argument runs in another process
SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply", "apply_async", "imap", "imap_unordered", "starmap"}
)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class MutableGlobal:
    """One module-level name bound to a known-mutable object."""

    name: str
    line: int
    kind: str  # e.g. "dict literal", "list literal", "Foo() instance"


@dataclass
class ModuleInfo:
    """Symbol table of one project module."""

    rel: str
    name: str  # dotted module name, e.g. "repro.sim.parallel"
    source: SourceFile
    #: local alias -> dotted target; ``from a.b import c as d`` maps
    #: ``d -> a.b.c``; ``import a.b as x`` maps ``x -> a.b``
    imports: dict[str, str] = field(default_factory=dict)
    #: "f" and "Class.method" -> def node
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    mutable_globals: dict[str, MutableGlobal] = field(default_factory=dict)
    #: local function names invoked (or used as decorators) at module
    #: scope — the import-time registration pattern
    module_level_called: set[str] = field(default_factory=set)
    #: class names that subclass an enum base
    enums: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class WorkerEntry:
    """One function handed to an executor's submit-like method."""

    target: str  # qualname of the submitted function
    submitter: str  # qualname of the function containing the submit call
    rel: str
    line: int
    call: ast.Call
    submitter_node: FunctionNode


def _module_name(package: str, rel: str) -> str:
    parts = rel[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _is_package(rel: str) -> bool:
    return rel.endswith("__init__.py")


def _relative_base(modname: str, rel: str, level: int) -> str:
    """The dotted package a level-``level`` relative import resolves in."""
    parts = modname.split(".")
    if not _is_package(rel):
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: -drop or None]
    return ".".join(parts)


def _mutable_kind(value: ast.expr, info: ModuleInfo) -> str | None:
    """Why a module-level value is mutable, or None if it is not known to be."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list literal"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict literal"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in MUTABLE_CONSTRUCTORS:
            return f"{name}() container"
        if name is not None and (
            name in info.classes or _imports_project_class(name, info)
        ):
            return f"{name}() instance"
    return None


def _imports_project_class(name: str, info: ModuleInfo) -> bool:
    # cheap syntactic check: an imported CapWord is assumed to be a class
    # (verified against the target module later when the model resolves)
    return name in info.imports and name[:1].isupper()


class SemanticModel:
    """Queryable project-wide view: modules, imports, calls, reachability."""

    def __init__(self, project: Project, package: str):
        self.project = project
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.by_rel: dict[str, ModuleInfo] = {}
        #: function qualname ("mod.f" / "mod.Class.m") -> (module, node)
        self.functions: dict[str, tuple[ModuleInfo, FunctionNode]] = {}
        #: caller qualname -> callee qualnames
        self.call_graph: dict[str, set[str]] = {}
        self._import_edges: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "SemanticModel":
        model = cls(project, package=project.root.name)
        for rel in sorted(project.files):
            info = model._build_module(project.files[rel])
            model.modules[info.name] = info
            model.by_rel[rel] = info
        for info in model.modules.values():
            model._index_functions(info)
        for info in model.modules.values():
            model._import_edges[info.name] = model.imports_of(info.name)
        for qualname, (info, node) in sorted(model.functions.items()):
            model.call_graph[qualname] = model._callees(qualname, info, node)
        return model

    def _build_module(self, source: SourceFile) -> ModuleInfo:
        info = ModuleInfo(
            rel=source.rel,
            name=_module_name(self.package, source.rel),
            source=source,
        )
        for stmt in source.tree.body:
            self._collect_stmt(stmt, info)
        # second pass: module-scope calls and decorators (registration)
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    self._note_module_call(deco, info)
                continue
            if isinstance(stmt, ast.ClassDef):
                for deco in stmt.decorator_list:
                    self._note_module_call(deco, info)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._note_module_call(node.func, info)
        return info

    def _collect_stmt(self, stmt: ast.stmt, info: ModuleInfo) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = (
                _relative_base(info.name, info.rel, stmt.level)
                if stmt.level
                else (stmt.module or "")
            )
            if stmt.level and stmt.module:
                base = f"{base}.{stmt.module}" if base else stmt.module
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            bases = {
                b.attr if isinstance(b, ast.Attribute) else getattr(b, "id", "")
                for b in stmt.bases
            }
            if bases & ENUM_BASES:
                info.enums.add(stmt.name)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.functions[f"{stmt.name}.{sub.name}"] = sub
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None:
                return
            kind = _mutable_kind(value, info)
            if kind is None:
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    info.mutable_globals[target.id] = MutableGlobal(
                        name=target.id, line=stmt.lineno, kind=kind
                    )
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks, guarded imports
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._collect_stmt(sub, info)

    def _note_module_call(self, func: ast.expr, info: ModuleInfo) -> None:
        if isinstance(func, ast.Name) and func.id in info.functions:
            info.module_level_called.add(func.id)

    def _index_functions(self, info: ModuleInfo) -> None:
        for local, node in info.functions.items():
            self.functions[f"{info.name}.{local}"] = (info, node)

    # -- resolution -----------------------------------------------------

    def _owning_module(self, dotted: str) -> str:
        """The longest project-module prefix of a dotted import target."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return ""

    def _normalize_target(self, dotted: str) -> tuple[str, str]:
        """``(owner module, normalized dotted)`` for an import target.

        Tries the target as written, then package-prefixed — a tree
        whose root sits on ``sys.path`` imports its own modules without
        the package name (fixture packages, scripts).
        """
        owner = self._owning_module(dotted)
        if owner:
            return owner, dotted
        if not dotted.startswith(self.package + "."):
            prefixed = f"{self.package}.{dotted}"
            owner = self._owning_module(prefixed)
            if owner:
                return owner, prefixed
        return "", dotted

    def resolve(
        self, info: ModuleInfo, dotted: str
    ) -> tuple[str, str, "ModuleInfo | None"]:
        """Resolve a dotted name used in ``info`` against the project.

        Returns ``(kind, qualname, target_module)`` where kind is one of
        ``"function"``, ``"class"``, ``"module"`` or ``""`` (unresolved).
        """
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            # a name defined in this module itself
            if dotted in info.functions:
                return "function", f"{info.name}.{dotted}", info
            if head in info.classes:
                return "class", f"{info.name}.{head}", info
            return "", "", None
        full = f"{target}.{rest}" if rest else target
        owner, full = self._normalize_target(full)
        if not owner:
            return "", "", None
        owner_info = self.modules[owner]
        symbol = full[len(owner) + 1 :] if len(full) > len(owner) else ""
        if not symbol:
            return "module", owner, owner_info
        if symbol in owner_info.functions:
            return "function", f"{owner}.{symbol}", owner_info
        if symbol.split(".")[0] in owner_info.classes:
            return "class", f"{owner}.{symbol.split('.')[0]}", owner_info
        return "", "", owner_info

    # -- import graph ---------------------------------------------------

    def imports_of(self, modname: str) -> set[str]:
        """Project modules ``modname`` imports (directly)."""
        info = self.modules.get(modname)
        if info is None:
            return set()
        out: set[str] = set()
        for target in info.imports.values():
            owner, _ = self._normalize_target(target)
            if owner and owner != modname:
                out.add(owner)
        return out

    def importers_of(self, modname: str) -> set[str]:
        """Project modules that import ``modname`` (directly)."""
        return {
            name
            for name, deps in self._import_edges.items()
            if modname in deps
        }

    # -- call graph -----------------------------------------------------

    def _callees(
        self, qualname: str, info: ModuleInfo, node: FunctionNode
    ) -> set[str]:
        out: set[str] = set()
        class_name = (
            qualname[len(info.name) + 1 :].rsplit(".", 1)[0]
            if "." in qualname[len(info.name) + 1 :]
            else ""
        )
        local_types = self._local_class_types(info, node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                kind, target, target_info = self.resolve(info, func.id)
                if kind == "function":
                    out.add(target)
                elif kind == "class" and target_info is not None:
                    self._add_constructor(target, target_info, out)
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base, attr = func.value.id, func.attr
                if base == "self" and class_name:
                    if f"{class_name}.{attr}" in info.functions:
                        out.add(f"{info.name}.{class_name}.{attr}")
                    continue
                if base in local_types:
                    cls_qual = local_types[base]
                    if f"{cls_qual}.{attr}" in self.functions:
                        out.add(f"{cls_qual}.{attr}")
                    continue
                kind, target, target_info = self.resolve(info, f"{base}.{attr}")
                if kind == "function":
                    out.add(target)
                elif kind == "class" and target_info is not None:
                    self._add_constructor(target, target_info, out)
        return out

    def _add_constructor(
        self, class_qual: str, target_info: ModuleInfo, out: set[str]
    ) -> None:
        local = class_qual[len(target_info.name) + 1 :]
        ctor = f"{local}.__init__"
        if ctor in target_info.functions:
            out.add(f"{target_info.name}.{ctor}")

    def _local_class_types(
        self, info: ModuleInfo, node: FunctionNode
    ) -> dict[str, str]:
        """Locals assigned from a resolved constructor call -> class qualname."""
        types: dict[str, str] = {}
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                continue
            func = sub.value.func
            dotted = None
            if isinstance(func, ast.Name):
                dotted = func.id
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                dotted = f"{func.value.id}.{func.attr}"
            if dotted is None:
                continue
            kind, target, _ = self.resolve(info, dotted)
            if kind == "class":
                types[sub.targets[0].id] = target
        return types

    def callees(self, qualname: str) -> set[str]:
        return self.call_graph.get(qualname, set())

    def reachable(self, entries: Iterable[str]) -> set[str]:
        """Transitive closure of the call graph from ``entries``."""
        seen: set[str] = set()
        stack = [e for e in entries if e in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.call_graph.get(current, ()))
        return seen

    # -- worker entries -------------------------------------------------

    def worker_entries(self) -> list[WorkerEntry]:
        """Every function handed to an executor submit-like method.

        Detected syntactically: ``anything.submit(fn, ...)`` (and the
        ``map``/``apply_async`` family) where ``fn`` resolves to a
        project function.  The receiver is not type-checked — any object
        with a ``submit`` method is treated as an executor, which errs
        towards auditing more code, never less.
        """
        out: list[WorkerEntry] = []
        for modname in sorted(self.modules):
            info = self.modules[modname]
            for local, fn_node in sorted(info.functions.items()):
                submitter = f"{modname}.{local}"
                for sub in ast.walk(fn_node):
                    if not (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in SUBMIT_METHODS
                        and sub.args
                    ):
                        continue
                    first = sub.args[0]
                    dotted = None
                    if isinstance(first, ast.Name):
                        dotted = first.id
                    elif isinstance(first, ast.Attribute) and isinstance(
                        first.value, ast.Name
                    ):
                        dotted = f"{first.value.id}.{first.attr}"
                    if dotted is None:
                        continue
                    kind, target, _ = self.resolve(info, dotted)
                    if kind != "function":
                        continue
                    out.append(
                        WorkerEntry(
                            target=target,
                            submitter=submitter,
                            rel=info.rel,
                            line=sub.lineno,
                            call=sub,
                            submitter_node=fn_node,
                        )
                    )
        return out
