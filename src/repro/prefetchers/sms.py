"""Spatial Memory Streaming prefetcher (Somogyi et al., ISCA 2006).

SMS learns *spatial patterns*: bitmaps of which cache lines are touched
within a fixed-size region during one "generation" of accesses.  Patterns
are indexed by the trigger access's (PC, region offset), so the same code
touching a fresh region replays the learned footprint.

Structures (paper-scaled per Table 2): a 32-entry filter table for regions
touched once, a 32-entry active generation table (AGT) accumulating
patterns, and a 2K-entry pattern history table (PHT).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


@dataclass(slots=True)
class SMSConfig:
    region_bytes: int = 2048
    line_bytes: int = 64
    filter_entries: int = 32
    agt_entries: int = 32
    pht_entries: int = 2048
    #: a generation also ends after this many demand accesses without a
    #: touch to the region (stand-in for the L1-eviction end condition)
    generation_timeout: int = 512

    @property
    def lines_per_region(self) -> int:
        return self.region_bytes // self.line_bytes


@dataclass(slots=True)
class _Generation:
    region: int
    trigger_pc: int
    trigger_offset: int  # line offset within region
    pattern: int  # bitmap over lines_per_region
    last_touch: int  # access index of the most recent touch


class SMSPrefetcher(Prefetcher):
    """Spatial memory streaming with trigger-(PC, offset) pattern indexing."""

    name = "sms"

    __slots__ = ("config", "_filter", "_agt", "_pht", "generations_trained")

    def __init__(self, config: SMSConfig | None = None):
        self.config = config or SMSConfig()
        self._filter: OrderedDict[int, _Generation] = OrderedDict()
        self._agt: OrderedDict[int, _Generation] = OrderedDict()
        self._pht: dict[int, int] = {}  # hashed (pc, offset) -> pattern
        self.generations_trained = 0

    # ------------------------------------------------------------------

    def _pht_index(self, pc: int, offset: int) -> int:
        return (pc * 0x9E3779B1 + offset) % self.config.pht_entries

    def _region_of(self, addr: int) -> tuple[int, int]:
        region = addr // self.config.region_bytes
        offset = (addr % self.config.region_bytes) // self.config.line_bytes
        return region, offset

    def _end_generation(self, gen: _Generation) -> None:
        """Commit a finished generation's pattern to the PHT."""
        if bin(gen.pattern).count("1") >= 2:
            idx = self._pht_index(gen.trigger_pc, gen.trigger_offset)
            self._pht[idx] = gen.pattern
            self.generations_trained += 1

    def _expire_stale(self, now_index: int) -> None:
        timeout = self.config.generation_timeout
        stale = [
            region
            for region, gen in self._agt.items()
            if now_index - gen.last_touch > timeout
        ]
        for region in stale:
            self._end_generation(self._agt.pop(region))
        stale_f = [
            region
            for region, gen in self._filter.items()
            if now_index - gen.last_touch > timeout
        ]
        for region in stale_f:
            del self._filter[region]

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        cfg = self.config
        region, offset = self._region_of(access.addr)
        self._expire_stale(access.index)

        gen = self._agt.get(region)
        if gen is not None:
            gen.pattern |= 1 << offset
            gen.last_touch = access.index
            self._agt.move_to_end(region)
            return []

        gen = self._filter.get(region)
        if gen is not None:
            # Second unique line promotes the region to the AGT.
            gen.last_touch = access.index
            if not gen.pattern & (1 << offset):
                gen.pattern |= 1 << offset
                del self._filter[region]
                self._agt[region] = gen
                if len(self._agt) > cfg.agt_entries:
                    _, evicted = self._agt.popitem(last=False)
                    self._end_generation(evicted)
            return []

        # Trigger access: a region with no active generation.
        gen = _Generation(
            region=region,
            trigger_pc=access.pc,
            trigger_offset=offset,
            pattern=1 << offset,
            last_touch=access.index,
        )
        self._filter[region] = gen
        if len(self._filter) > cfg.filter_entries:
            self._filter.popitem(last=False)

        # Predict: replay the learned footprint for this trigger.
        pattern = self._pht.get(self._pht_index(access.pc, offset), 0)
        if pattern == 0:
            return []
        base = region * cfg.region_bytes
        requests = []
        for line in range(cfg.lines_per_region):
            if pattern & (1 << line) and line != offset:
                requests.append(PrefetchRequest(addr=base + line * cfg.line_bytes))
        return requests

    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        cfg = self.config
        pattern_bits = cfg.lines_per_region
        # filter/AGT: region tag (26) + pc (32) + offset (5) + pattern
        gen_bits = 26 + 32 + 5 + pattern_bits
        pht_bits = cfg.pht_entries * pattern_bits
        return (cfg.filter_entries + cfg.agt_entries) * gen_bits + pht_bits

    def reset(self) -> None:
        self._filter.clear()
        self._agt.clear()
        self._pht.clear()
        self.generations_trained = 0

    def is_pristine(self) -> bool:
        return (
            not self._filter
            and not self._agt
            and not self._pht
            and self.generations_trained == 0
        )
