"""Scheduler-stack suite: plan, result DB, warm pool, resume.

Two invariants carry the whole subsystem:

* **Determinism** — a grid dispatched through the persistent warm
  worker pool at any ``jobs`` level is field-for-field identical to the
  serial loop, and the result DB it fills is canonically identical run
  to run.
* **Resume** — a sweep interrupted mid-grid re-executes *only* the
  missing cells, and the resumed DB's canonical dump is bit-identical
  to an uninterrupted run's.  ``max_cells`` is the deterministic
  stand-in for a mid-sweep kill: every executed cell commits with its
  batch, so stopping after N cells leaves the DB exactly as a real
  interruption would.
"""

import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.codec import encode_result
from repro.sim.runner import compare
from repro.sim.sched.db import ResultDB, ResultDBError
from repro.sim.sched.plan import GridPlan, PlanCell, shard_by_workload
from repro.sim.sched.pool import CELL_FIELDS, shared_pool
from repro.sim.sched.scheduler import SweepScheduler
from repro.workloads.store import TraceStore

WORKLOADS = ("list", "array")
PREFETCHERS = ("none", "context")
LIMIT = 1200


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("traces"))
    for name in WORKLOADS:
        store.compile(name)
    return store


@pytest.fixture(scope="module")
def plan():
    return GridPlan(workloads=WORKLOADS, prefetchers=PREFETCHERS, limit=LIMIT)


@pytest.fixture(scope="module")
def serial(plan):
    return compare(
        plan.workloads, plan.prefetchers, limit=plan.limit,
        jobs=1, cache=False, store=False,
    )


def run_plan(plan, db, store, jobs, **kwargs):
    scheduler = SweepScheduler(db=db, store=store, jobs=jobs)
    return scheduler.run_plan_sync(plan, **kwargs)


class TestGridPlan:
    def test_enumeration_order(self, plan):
        cells = list(plan.cells())
        assert [c.index for c in cells] == list(range(plan.n_cells))
        # workload-outer, prefetcher-inner: the serial loop's order
        assert [(c.workload, c.prefetcher) for c in cells] == [
            (wl, pf) for wl in WORKLOADS for pf in PREFETCHERS
        ]

    def test_sweep_id_tracks_cell_keys(self, plan):
        fps = {"list": "aa", "array": "bb"}
        keys = plan.cell_keys(fps)
        assert len(keys) == plan.n_cells
        assert plan.sweep_id(keys) == plan.sweep_id(keys)
        other = plan.cell_keys({"list": "aa", "array": "cc"})
        assert plan.sweep_id(keys) != plan.sweep_id(other)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            GridPlan(workloads=(), prefetchers=PREFETCHERS)


class TestShardByWorkload:
    def test_batches_are_workload_pure(self):
        cells = [
            PlanCell(i, wl, "none", 0)
            for i, wl in enumerate(["a"] * 7 + ["b"] * 5 + ["c"] * 1)
        ]
        batches = shard_by_workload(cells, lambda c: c.workload, jobs=4)
        for batch in batches:
            assert len({c.workload for c in batch}) == 1
        flat = [c for batch in batches for c in batch]
        assert flat == cells  # order preserved across the shard

    def test_max_batch_bounds_chunks(self):
        cells = [PlanCell(i, "a", "none", 0) for i in range(2000)]
        batches = shard_by_workload(
            cells, lambda c: c.workload, jobs=1, max_batch=512
        )
        assert all(len(b) <= 512 for b in batches)
        assert sum(len(b) for b in batches) == 2000


class TestResultDB:
    def test_round_trip_and_ignore_duplicates(self, tmp_path, serial):
        db = ResultDB(tmp_path / "db.sqlite")
        result = serial.get("list", "none")
        payload = encode_result(result)
        row = ("k1", 0, "list", "none", payload)
        assert db.store_cells("s1", [row]) == 1
        assert db.store_cells("s1", [row]) == 0  # content-addressed
        assert encode_result(db.load("k1")) == payload
        assert db.load("missing") is None
        assert db.completed_keys(["k1", "k2"]) == {"k1"}

    def test_corrupt_payload_degrades_to_miss(self, tmp_path, serial, caplog):
        db = ResultDB(tmp_path / "db.sqlite")
        payload = encode_result(serial.get("list", "none"))
        db.store_cells("s1", [("k1", 0, "list", "none", payload)])
        with sqlite3.connect(db.path) as conn:
            conn.execute("UPDATE cells SET payload = ?", (b"\x00garbage",))
        with caplog.at_level("WARNING"):
            assert db.load("k1") is None
        assert any("k1" in r.message for r in caplog.records)

    def test_canonical_dump_is_key_ordered(self, tmp_path, serial):
        payload = encode_result(serial.get("list", "none"))
        a = ResultDB(tmp_path / "a.sqlite")
        b = ResultDB(tmp_path / "b.sqlite")
        rows = [
            ("k2", 1, "list", "context", payload),
            ("k1", 0, "list", "none", payload),
        ]
        a.store_cells("s1", rows)
        b.store_cells("s1", list(reversed(rows)))  # insertion order differs
        assert a.canonical_dump() == b.canonical_dump()

    def test_schema_version_skew_raises(self, tmp_path):
        path = tmp_path / "db.sqlite"
        ResultDB(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema'")
        with pytest.raises(ResultDBError):
            ResultDB(path)

    def test_busy_commit_is_retried(self, tmp_path, monkeypatch):
        db = ResultDB(tmp_path / "db.sqlite")
        sleeps = []
        monkeypatch.setattr("repro.sim.sched.db.time.sleep", sleeps.append)
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert db._write(attempt) == "ok"
        assert calls["n"] == 3
        assert sleeps == sorted(sleeps) and len(sleeps) == 2  # backoff grows

    def test_non_busy_error_is_not_retried(self, tmp_path, monkeypatch):
        db = ResultDB(tmp_path / "db.sqlite")
        monkeypatch.setattr(
            "repro.sim.sched.db.time.sleep",
            lambda s: pytest.fail("non-busy errors must not back off"),
        )
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError):
            db._write(attempt)
        assert calls["n"] == 1


class TestConcurrentWriters:
    def test_two_submitters_disjoint_shards(self, tmp_path, store):
        """Two processes filling one WAL DB match the serial dump."""
        script = Path(__file__).with_name("_concurrent_writer.py")
        shared = tmp_path / "shared.sqlite"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(shared),
                 str(store.root), wl, str(LIMIT)],
                env=env,
            )
            for wl in WORKLOADS
        ]
        assert [p.wait(timeout=600) for p in procs] == [0, 0]

        serial_db = ResultDB(tmp_path / "serial.sqlite")
        for wl in WORKLOADS:
            shard = GridPlan(
                workloads=(wl,), prefetchers=PREFETCHERS, limit=LIMIT
            )
            run_plan(shard, serial_db, store, jobs=1)
        with ResultDB(shared) as concurrent:
            assert concurrent.canonical_dump() == serial_db.canonical_dump()


class TestWarmPool:
    def test_cell_fields_pin(self):
        # PERF004 pins this layout; the constant is the wire contract
        assert CELL_FIELDS == ("index", "prefetcher", "context_id")

    def test_workers_persist_across_dispatches(self, tmp_path, store, plan):
        pool = shared_pool(2)
        assert shared_pool(2) is pool
        pids = pool.worker_pids()
        assert len(pids) == 2
        run_plan(plan, ResultDB(tmp_path / "a.sqlite"), store, jobs=2)
        run_plan(plan, ResultDB(tmp_path / "b.sqlite"), store, jobs=2)
        # both sweeps ran on the same resident workers: no respawn
        assert pool.worker_pids() == pids
        assert pool.alive()


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_bit_identical_to_serial(self, tmp_path, store, plan, serial, jobs):
        db = ResultDB(tmp_path / "db.sqlite")
        stats = run_plan(plan, db, store, jobs=jobs)
        assert (stats.executed, stats.resumed) == (plan.n_cells, 0)
        fps = {wl: store.ensure(wl)[0].fingerprint for wl in plan.workloads}
        keys = plan.cell_keys(fps)
        for cell in plan.cells():
            got = db.load(keys[cell.index])
            want = serial.get(cell.workload, cell.prefetcher)
            assert encode_result(got) == encode_result(want), (
                f"{cell.workload}/{cell.prefetcher} diverged at jobs={jobs}"
            )

    def test_config_axis_jobs_invariant(self, tmp_path, store):
        from repro.serve.service import plan_from_axes

        plan = plan_from_axes(
            workloads=["list"],
            prefetchers=["context"],
            cst_sizes=[128, 256],
            limit=LIMIT,
        )
        dumps = []
        for jobs in (1, 2):
            db = ResultDB(tmp_path / f"db{jobs}.sqlite")
            run_plan(plan, db, store, jobs=jobs)
            dumps.append(db.canonical_dump())
        assert dumps[0] == dumps[1]


class TestResume:
    def test_second_run_recomputes_nothing(self, tmp_path, store, plan):
        db = ResultDB(tmp_path / "db.sqlite")
        first = run_plan(plan, db, store, jobs=2)
        again = run_plan(plan, db, store, jobs=2)
        assert (first.executed, first.resumed) == (plan.n_cells, 0)
        assert (again.executed, again.resumed) == (0, plan.n_cells)

    def test_kill_mid_sweep_resume(self, tmp_path, store, plan):
        # uninterrupted reference
        full_db = ResultDB(tmp_path / "full.sqlite")
        run_plan(plan, full_db, store, jobs=2)

        # interrupted run: stop after 3 of 4 cells, then resume
        db = ResultDB(tmp_path / "resumed.sqlite")
        partial = run_plan(plan, db, store, jobs=2, max_cells=3)
        assert (partial.executed, partial.resumed) == (3, 0)
        resumed = run_plan(plan, db, store, jobs=2)
        # zero recompute: only the one missing cell executed
        assert (resumed.executed, resumed.resumed) == (1, 3)
        assert db.canonical_dump() == full_db.canonical_dump()

    def test_progress_reports_resume(self, tmp_path, store, plan):
        db = ResultDB(tmp_path / "db.sqlite")
        run_plan(plan, db, store, jobs=1, max_cells=2)
        lines = []
        run_plan(plan, db, store, jobs=1, progress=lines.append)
        assert any("resume: 2/4" in line for line in lines)
