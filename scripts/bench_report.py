"""Measured performance trajectory: write/verify ``BENCH_<pr>.json``.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--quick] [--out FILE]
    PYTHONPATH=src python scripts/bench_report.py --quick --check BENCH_4.json

Every perf PR commits a ``BENCH_<pr>.json`` produced by this script, so
the repo carries a measured trajectory instead of asserted speedups:

* **kernel** — accesses/sec of the bare per-access simulation loop
  (``Simulator.run`` over prebuilt traces; trace construction excluded),
  per prefetcher family, best-of-``repeats``.  The context prefetcher is
  the headline number: it exercises every unit of the paper's Algorithm 1
  on every access.
* **figures** — wall time of representative figure regenerations (the
  same work the ``benchmarks/`` suite measures under pytest-benchmark,
  condensed so CI can afford it).
* **calibration** — iterations/sec of a fixed pure-Python loop that does
  not touch repo code.  ``--check`` normalises the committed kernel
  number by the calibration ratio before comparing, so a slower CI
  machine does not read as a regression.
* **trace_pipeline** (PR 5) — the compiled trace store versus the PR 4
  dispatch path.  Per workload: build (TraceBuilder) vs encode
  (``write_trace``) vs decode (``read_trace``) vs warm ``ensure`` time.
  Per sweep: wall time of the same multi-cell grid dispatched with
  ``jobs=2`` the PR 4 way (parent builds, pickled tuples ship) and the
  store way (cold compile, then warm mmap), with the two results
  asserted field-for-field identical before any number is written.
* **native_vs_reference** (PR 7, schema 3; schema 4 from PR 8) — the
  compiled batch kernel (``repro.sim.native``) against the interpreted
  reference loop, per prefetcher family, over mmap-backed ``.rpt``
  readers (the deployment path: decode inside the timed run).  Every
  cell's ``SimulationResult`` is asserted field-for-field identical to
  the interpreted run before any number is written.  Since PR 8 the RL
  ``context`` family is a measured native row like the rest — its
  CST/bandit/reward loop (and a bit-exact CPython MT19937) runs in C —
  so ``native_handled`` is true across the board.

* **batch_kernel** (PR 10, schema 6) — the in-kernel batch driver
  (one GIL-released C call per workload-pure shard, cells fanned over
  an OpenMP team) against the PR 9 per-cell warm path, on the same
  reference grid ``sweep_throughput`` uses.  A serial inline oracle,
  then three scheduler legs — the warm scheduler with the batch driver
  off, and the batch driver at 1 and at 4 OpenMP threads — measured
  interleaved, best-of-``reps``, so this container's load-dependent
  throttling cannot systematically penalise later legs.  Every
  scheduler DB (all legs, all reps) must be canonically identical and
  the batch cells must equal the serial oracle field for field before
  any number is written — thread count may only change wall time,
  never a result.

* **sweep_throughput** (PR 9, schema 5) — the warm-worker scheduler
  (``repro.sim.sched``) against the PR 5 store-fed dispatch on the same
  seed-axis grid: ``workloads × context-seed variants``, ≥10,000 cells
  in the full report.  The warm path runs the whole grid through one
  :class:`SweepScheduler` over the persistent pool; the baseline
  dispatches the same cells the PR 5 way — one pool-per-call
  ``parallel_compare(warm=False)`` per config slice — measured over a
  recorded subset (its per-cell cost is flat in the number of slices,
  and the full grid at baseline speed would take hours by design).
  Every warm cell is asserted field-for-field identical to a serial
  inline run before any number is written.

``--check FILE`` re-measures the context kernel and fails (exit 1) if it
regresses more than ``--tolerance`` (default 30%) against the committed,
calibration-normalised value.  A committed ``sweep_throughput`` section
is also gated: the quick grid must keep the warm scheduler ≥3× the
legacy dispatch here and now, and the committed full-grid ratio must
meet the ≥5× acceptance floor.  When the committed report carries a
``native_vs_reference`` section, the check also re-measures the native
kernel (parity-gated) and fails if any native family's speedup —
``context`` included — falls below
``max(5x, committed * (1 - 2*tolerance))``: doubled because the quick
grid's smaller limit systematically understates the ratio, floored at
the 5x the ISSUE 8 acceptance criterion claims for the context family.
A committed ``batch_kernel`` section is gated the same way: the
committed full-grid ratios must meet the PR 10 acceptance floors
(≥5× at 4 threads, ≥1.5× at 1 thread vs the per-cell warm path), the
quick grid must keep the batch driver ≥1.3× per-cell here and now,
and the committed cells/s rates for both throughput sections must
clear a conservative calibration-normalised sanity floor (so a
wrong-by-an-order-of-magnitude committed rate fails even on a machine
of a different speed).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.sim.config import PREFETCHER_FACTORIES, PREFETCHER_ORDER  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.workloads.suites import get_workload  # noqa: E402

#: schema 2 adds the ``trace_pipeline`` section (PR 5); schema 3 adds
#: ``native_vs_reference`` (PR 7); schema 4 (PR 8) makes ``context`` a
#: measured native family inside it (``native_handled`` true everywhere);
#: schema 5 (PR 9) adds ``sweep_throughput`` (warm-worker scheduler vs
#: the PR 5 store-fed dispatch); schema 6 (PR 10) adds ``batch_kernel``
#: (the in-kernel multi-cell batch driver vs the per-cell warm path)
SCHEMA = 6

#: the kernel measurement grid: one streaming, one pointer-chasing and
#: one graph workload, truncated so a full report stays minutes-scale
KERNEL_WORKLOADS = ("mcf", "list", "graph500-csr")
KERNEL_LIMIT = 20000
KERNEL_LIMIT_QUICK = 8000
KERNEL_REPEATS = 3
KERNEL_REPEATS_QUICK = 2

#: context-prefetcher kernel accesses/sec measured by THIS script at the
#: pre-PR-4 tree (commit f6604e0, same container class CI uses), before
#: the hot-path rewrite.  BENCH_4.json's ``speedup_vs_baseline`` is
#: computed against these numbers; they are the PR's "before" column.
PRE_PR4_BASELINE = {
    "limit": KERNEL_LIMIT,
    "accesses_per_sec": {
        "none": 76731.3,
        "stride": 79266.7,
        "ghb-gdc": 44590.4,
        "ghb-pcdc": 42959.8,
        "sms": 52016.8,
        "context": 18404.6,
    },
    "calibration_score": 10530946.1,
}


def calibration_score() -> float:
    """Iterations/sec of a fixed arithmetic loop (machine-speed probe)."""
    n = 200_000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - t0)
    return n / best


def _build_traces(limit: int):
    traces = {}
    for name in KERNEL_WORKLOADS:
        traces[name] = get_workload(name).build().trace()[:limit]
    return traces


def measure_kernel(
    prefetchers=PREFETCHER_ORDER,
    *,
    limit: int = KERNEL_LIMIT,
    repeats: int = KERNEL_REPEATS,
) -> dict:
    """Best-of-``repeats`` accesses/sec per prefetcher over the grid."""
    traces = _build_traces(limit)
    total_accesses = sum(len(t) for t in traces.values())
    rates: dict[str, float] = {}
    for pf_name in prefetchers:
        best = float("inf")
        for _ in range(repeats):
            elapsed = 0.0
            for wl_name, trace in traces.items():
                sim = Simulator(PREFETCHER_FACTORIES[pf_name]())
                t0 = time.perf_counter()
                sim.run(trace, workload_name=wl_name)
                elapsed += time.perf_counter() - t0
            best = min(best, elapsed)
        rates[pf_name] = round(total_accesses / best, 1)
    return {
        "workloads": list(KERNEL_WORKLOADS),
        "limit": limit,
        "repeats": repeats,
        "accesses_per_sec": rates,
    }


def measure_figures(quick: bool) -> dict:
    """Wall time of representative figure regenerations (cache off)."""
    from repro.experiments import fig01_semantic_locality, fig05_reward
    from repro.experiments import fig12_speedup
    from repro.sim.runner import compare

    timings: dict[str, float] = {}

    def timed(name, fn):
        t0 = time.perf_counter()
        out = fn()
        timings[name] = round(time.perf_counter() - t0, 3)
        return out

    timed("fig01_semantic_locality", fig01_semantic_locality.run)
    timed("fig05_reward", fig05_reward.run)
    if not quick:
        workloads = [get_workload(n) for n in KERNEL_WORKLOADS]
        comparison = timed(
            "sweep_compact",
            lambda: compare(
                workloads, limit=KERNEL_LIMIT, jobs=1, cache=False
            ),
        )
        timed(
            "fig12_speedup_view",
            lambda: fig12_speedup.run(comparison=comparison),
        )
    return timings


#: the trace-pipeline sweep: enough workloads that trace supply (not the
#: worker pool) dominates the dispatch-path difference, cheap prefetchers
#: so simulation time doesn't drown it
TRACE_PIPELINE_WORKLOADS = (
    "mcf", "lbm", "h264ref", "graph500-csr", "suffixarray", "list",
)
TRACE_PIPELINE_WORKLOADS_QUICK = ("mcf", "graph500-csr", "list")
TRACE_PIPELINE_PREFETCHERS = ("none", "stride", "ghb-pcdc")
TRACE_PIPELINE_LIMIT = 2500
TRACE_PIPELINE_JOBS = 2
TRACE_PIPELINE_REPEATS = 2


def _assert_sweeps_identical(a, b, context: str) -> None:
    """Field-for-field parity gate: no number is reported for a dispatch
    path whose results drift from the baseline path by even one field."""
    assert list(a.results) == list(b.results), context
    for wl in a.workloads():
        assert list(a.results[wl]) == list(b.results[wl]), context
        for pf in a.prefetchers():
            if a.get(wl, pf) != b.get(wl, pf):
                raise SystemExit(
                    f"PARITY FAILURE ({context}): {wl}/{pf} differs between "
                    "dispatch paths; refusing to write a benchmark report"
                )


def measure_trace_pipeline(quick: bool) -> dict:
    """Build/encode/decode/ensure per workload + dispatch-path wall times."""
    import shutil
    import tempfile

    from repro.sim.runner import compare
    from repro.workloads.store import TraceStore, read_trace, write_trace

    workloads = (
        TRACE_PIPELINE_WORKLOADS_QUICK if quick else TRACE_PIPELINE_WORKLOADS
    )
    prefetchers = TRACE_PIPELINE_PREFETCHERS
    limit = TRACE_PIPELINE_LIMIT
    jobs = TRACE_PIPELINE_JOBS
    repeats = 1 if quick else TRACE_PIPELINE_REPEATS

    tmp = Path(tempfile.mkdtemp(prefix="bench-trace-store-"))
    try:
        codec_store = TraceStore(tmp / "codec")
        per_workload: dict[str, dict] = {}
        for name in workloads:
            t0 = time.perf_counter()
            trace = get_workload(name).build().trace()
            build_s = time.perf_counter() - t0

            path = codec_store.path_for(name)
            t0 = time.perf_counter()
            write_trace(path, trace, workload=name)
            encode_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            decoded = read_trace(path)
            decode_s = time.perf_counter() - t0
            assert len(decoded) == len(trace)

            t0 = time.perf_counter()
            codec_store.ensure(name)  # warm: header validation only
            ensure_s = time.perf_counter() - t0

            per_workload[name] = {
                "records": len(trace),
                "build_seconds": round(build_s, 4),
                "encode_seconds": round(encode_s, 4),
                "decode_seconds": round(decode_s, 4),
                "warm_ensure_seconds": round(ensure_s, 4),
            }

        def timed_compare(store):
            t0 = time.perf_counter()
            result = compare(
                workloads,
                prefetchers,
                limit=limit,
                jobs=jobs,
                cache=False,
                store=store,
            )
            return time.perf_counter() - t0, result

        # the PR 4 dispatch path: parent builds every workload, cells
        # ship pickled truncated tuples (store explicitly off)
        legacy_s = float("inf")
        for _ in range(repeats):
            elapsed, legacy_result = timed_compare(False)
            legacy_s = min(legacy_s, elapsed)

        # the store path: cold run compiles the files, warm runs map them
        sweep_store = TraceStore(tmp / "sweep")
        store_cold_s, cold_result = timed_compare(sweep_store)
        store_warm_s = float("inf")
        for _ in range(repeats):
            elapsed, warm_result = timed_compare(sweep_store)
            store_warm_s = min(store_warm_s, elapsed)

        _assert_sweeps_identical(legacy_result, cold_result, "legacy vs cold")
        _assert_sweeps_identical(legacy_result, warm_result, "legacy vs warm")

        cells = len(workloads) * len(prefetchers)
        return {
            "workloads": list(workloads),
            "prefetchers": list(prefetchers),
            "limit": limit,
            "jobs": jobs,
            "repeats": repeats,
            "cells": cells,
            "per_workload": per_workload,
            "dispatch": {
                "legacy_seconds": round(legacy_s, 3),
                "store_cold_seconds": round(store_cold_s, 3),
                "store_warm_seconds": round(store_warm_s, 3),
                "legacy_per_cell_seconds": round(legacy_s / cells, 4),
                "store_warm_per_cell_seconds": round(store_warm_s / cells, 4),
                "speedup_cold_vs_legacy": round(legacy_s / store_cold_s, 3),
                "speedup_warm_vs_legacy": round(legacy_s / store_warm_s, 3),
                "parity": "bit-identical",
            },
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def measure_native_vs_reference(quick: bool) -> dict:
    """Native vs interpreted accesses/sec per family, parity-gated.

    The native side times the real deployment path — a fresh mmap-backed
    :class:`TraceReader` handed to ``Simulator.run``, so the zero-copy
    decode phase is inside the measurement — while the interpreted side
    runs over the same records as a prebuilt list (its own deployment
    shape).  No number is written for a cell whose native result differs
    from the interpreted one by even one field.
    """
    import shutil
    import tempfile

    from repro.sim import native as native_pkg
    from repro.workloads.store import TraceReader, TraceStore, read_trace

    # is_available() also builds (or loads the cached) kernel, so the
    # compile cost never lands inside a timed run below
    if not native_pkg.is_available():
        return {"available": False}

    limit = KERNEL_LIMIT_QUICK if quick else KERNEL_LIMIT
    repeats = KERNEL_REPEATS_QUICK if quick else KERNEL_REPEATS

    tmp = Path(tempfile.mkdtemp(prefix="bench-native-"))
    try:
        store = TraceStore(tmp)
        paths: dict[str, Path] = {}
        traces: dict[str, list] = {}
        for name in KERNEL_WORKLOADS:
            stored, _ = store.ensure(name)
            paths[name] = stored.path
            traces[name] = read_trace(
                stored.path, limit=limit, expect_fingerprint=stored.fingerprint
            )
        total_accesses = sum(len(t) for t in traces.values())

        families: dict[str, dict] = {}
        for pf_name in PREFETCHER_ORDER:
            interp_best = float("inf")
            native_best = float("inf")
            native_handled = True
            for _ in range(repeats):
                interp_elapsed = 0.0
                native_elapsed = 0.0
                for wl_name in KERNEL_WORKLOADS:
                    sim = Simulator(PREFETCHER_FACTORIES[pf_name]())
                    t0 = time.perf_counter()
                    reference = sim.run(traces[wl_name], workload_name=wl_name)
                    interp_elapsed += time.perf_counter() - t0

                    nsim = Simulator(
                        PREFETCHER_FACTORIES[pf_name](), native=True
                    )
                    reader = TraceReader(paths[wl_name])
                    t0 = time.perf_counter()
                    got = nsim.run(
                        reader, workload_name=wl_name, limit=limit
                    )
                    native_elapsed += time.perf_counter() - t0
                    native_handled = native_handled and nsim.last_run_native
                    if got != reference:
                        raise SystemExit(
                            "PARITY FAILURE (native vs reference): "
                            f"{wl_name}/{pf_name} diverged; refusing to "
                            "write a benchmark report"
                        )
                interp_best = min(interp_best, interp_elapsed)
                native_best = min(native_best, native_elapsed)
            families[pf_name] = {
                "interpreted_accesses_per_sec": round(
                    total_accesses / interp_best, 1
                ),
                "native_accesses_per_sec": round(
                    total_accesses / native_best, 1
                ),
                "speedup": round(interp_best / native_best, 3),
                "native_handled": native_handled,
                "parity": "bit-identical",
            }
        return {
            "available": True,
            "workloads": list(KERNEL_WORKLOADS),
            "limit": limit,
            "repeats": repeats,
            "families": families,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: the sweep-throughput grid: workloads × context-seed variants (the
#: bandit seed is a config field, so every seed is a distinct
#: content-addressed cell — a seed-robustness sweep at survey scale).
#: 4 workloads × 2500 seeds = 10,000 cells in the full report.
SWEEP_THROUGHPUT_WORKLOADS = ("mcf", "graph500-csr", "list", "array")
SWEEP_THROUGHPUT_WORKLOADS_QUICK = ("mcf", "list")
SWEEP_THROUGHPUT_SEEDS = 2500
SWEEP_THROUGHPUT_SEEDS_QUICK = 50
#: config slices dispatched the PR 5 way to measure the baseline rate —
#: per-cell baseline cost is flat in the slice count (each slice pays
#: one executor spawn + per-cell job pickling), so a subset measures it
SWEEP_THROUGHPUT_BASELINE_SEEDS = 12
SWEEP_THROUGHPUT_BASELINE_SEEDS_QUICK = 3
SWEEP_THROUGHPUT_LIMIT = 200
SWEEP_THROUGHPUT_JOBS = 2


def measure_sweep_throughput(quick: bool) -> dict:
    """Warm-worker scheduler vs PR 5 store-fed dispatch, parity-gated.

    Three runs over one grid: a serial inline loop (the parity oracle),
    the full grid through :class:`SweepScheduler` on the persistent
    pool, and a recorded subset of the same cells through the PR 5
    pool-per-call dispatch (``parallel_compare(warm=False)`` per config
    slice, exactly how the pre-PR-9 storage sweep ran).  No number is
    written unless every warm cell equals its serial twin field for
    field and every measured baseline cell does too.
    """
    import dataclasses
    import shutil
    import tempfile

    from repro.core.config import ContextPrefetcherConfig
    from repro.core.prefetcher import ContextPrefetcher
    from repro.sim.codec import encode_result
    from repro.sim.parallel import parallel_compare
    from repro.sim.sched.db import ResultDB
    from repro.sim.sched.plan import GridPlan
    from repro.sim.sched.scheduler import SweepScheduler
    from repro.workloads.store import TraceStore, read_trace

    workloads = (
        SWEEP_THROUGHPUT_WORKLOADS_QUICK if quick else SWEEP_THROUGHPUT_WORKLOADS
    )
    n_seeds = SWEEP_THROUGHPUT_SEEDS_QUICK if quick else SWEEP_THROUGHPUT_SEEDS
    baseline_seeds = (
        SWEEP_THROUGHPUT_BASELINE_SEEDS_QUICK
        if quick
        else SWEEP_THROUGHPUT_BASELINE_SEEDS
    )
    limit = SWEEP_THROUGHPUT_LIMIT
    jobs = SWEEP_THROUGHPUT_JOBS

    base = ContextPrefetcherConfig()
    configs = tuple(dataclasses.replace(base, seed=s) for s in range(n_seeds))
    plan = GridPlan(
        workloads=workloads,
        prefetchers=("context",),
        context_configs=configs,
        limit=limit,
    )

    tmp = Path(tempfile.mkdtemp(prefix="bench-sweep-"))
    try:
        store = TraceStore(tmp / "traces")
        fingerprints: dict[str, str] = {}
        traces: dict[str, list] = {}
        for name in workloads:  # compile outside every timed region
            stored, _ = store.ensure(name)
            fingerprints[name] = stored.fingerprint
            traces[name] = read_trace(
                stored.path, limit=limit, expect_fingerprint=stored.fingerprint
            )

        # serial inline reference: one process, one cell at a time
        serial: dict[tuple[str, int], object] = {}
        t0 = time.perf_counter()
        for wl_name in workloads:
            for context_id, config in enumerate(configs):
                sim = Simulator(ContextPrefetcher(config), native=True)
                serial[(wl_name, context_id)] = sim.run(
                    traces[wl_name], workload_name=wl_name
                )
        serial_s = time.perf_counter() - t0

        # the whole grid through the warm-worker scheduler
        db = ResultDB(tmp / "sweep.db")
        scheduler = SweepScheduler(db=db, store=store, jobs=jobs, native=True)
        t0 = time.perf_counter()
        stats = scheduler.run_plan_sync(plan)
        warm_s = time.perf_counter() - t0
        assert stats.executed == plan.n_cells

        keys = plan.cell_keys(fingerprints)
        for cell in plan.cells():
            got = db.load(keys[cell.index])
            want = serial[(cell.workload, cell.context_id)]
            if got is None or encode_result(got) != encode_result(want):
                raise SystemExit(
                    "PARITY FAILURE (warm scheduler vs serial): "
                    f"{cell.workload}/seed={cell.context_id} diverged; "
                    "refusing to write a benchmark report"
                )

        # the PR 5 dispatch baseline over a recorded slice of the grid
        t0 = time.perf_counter()
        for seed in range(baseline_seeds):
            comparison = parallel_compare(
                workloads,
                ("context",),
                context_config=configs[seed],
                limit=limit,
                jobs=jobs,
                store=store,
                native=True,
                warm=False,
            )
            for wl_name in workloads:
                if comparison.get(wl_name, "context") != serial[(wl_name, seed)]:
                    raise SystemExit(
                        "PARITY FAILURE (legacy dispatch vs serial): "
                        f"{wl_name}/seed={seed} diverged; refusing to "
                        "write a benchmark report"
                    )
        legacy_s = time.perf_counter() - t0
        baseline_cells = baseline_seeds * len(workloads)

        warm_rate = plan.n_cells / warm_s
        legacy_rate = baseline_cells / legacy_s
        return {
            "workloads": list(workloads),
            "seeds": n_seeds,
            "limit": limit,
            "jobs": jobs,
            "grid_cells": plan.n_cells,
            "baseline_cells_measured": baseline_cells,
            "serial_seconds": round(serial_s, 3),
            "warm_seconds": round(warm_s, 3),
            "legacy_seconds": round(legacy_s, 3),
            "warm_cells_per_sec": round(warm_rate, 1),
            "legacy_cells_per_sec": round(legacy_rate, 1),
            "speedup_warm_vs_legacy": round(warm_rate / legacy_rate, 2),
            "parity": "bit-identical",
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: the in-kernel batch grid: the same reference grid sweep_throughput
#: uses (workloads × context-seed variants, limit 200), re-dispatched
#: through the per-cell and in-kernel batch paths.  The quick grid
#: stays in the hundreds of cells — on a ~100-cell grid the one-off
#: pool spawn dominates and the ratio reads as noise.
BATCH_KERNEL_SEEDS = SWEEP_THROUGHPUT_SEEDS
BATCH_KERNEL_SEEDS_QUICK = 400
BATCH_KERNEL_WORKLOADS_QUICK = ("mcf", "list")
BATCH_KERNEL_THREADS = 4

#: scheduler legs are measured best-of-N with the legs *interleaved*
#: (percell, batch1, batch4, percell, ...) rather than one-shot in
#: sequence: under sustained load this container throttles, so a
#: sequential measurement systematically penalises whichever leg runs
#: later.  Interleaving spreads the drift across legs and best-of-N
#: keeps the least-throttled sample of each, the same defence the
#: kernel section's best-of-R timing uses.
BATCH_KERNEL_REPS = 2


def measure_batch_kernel(quick: bool) -> dict:
    """In-kernel batch driver vs the per-cell warm path, parity-gated.

    One serial inline oracle over a context-seed grid, then three
    scheduler legs — the warm scheduler with the batch driver off (the
    PR 9 per-cell path), and the batch driver at 1 and at
    :data:`BATCH_KERNEL_THREADS` OpenMP threads — each run
    :data:`BATCH_KERNEL_REPS` times, interleaved, best time kept.
    Every scheduler DB (all legs, all reps) must be canonically
    identical and the batch cells must equal the serial oracle field
    for field before any number is written — thread count may only
    change wall time, never a result.
    """
    import dataclasses
    import shutil
    import tempfile

    from repro.core.config import ContextPrefetcherConfig
    from repro.core.prefetcher import ContextPrefetcher
    from repro.sim import native as native_pkg
    from repro.sim.codec import encode_result
    from repro.sim.native.build import kernel_openmp
    from repro.sim.sched.db import ResultDB
    from repro.sim.sched.plan import GridPlan
    from repro.sim.sched.scheduler import SweepScheduler
    from repro.workloads.store import TraceStore, read_trace

    if not native_pkg.is_available():
        return {"available": False}

    workloads = (
        BATCH_KERNEL_WORKLOADS_QUICK if quick else SWEEP_THROUGHPUT_WORKLOADS
    )
    n_seeds = BATCH_KERNEL_SEEDS_QUICK if quick else BATCH_KERNEL_SEEDS
    limit = SWEEP_THROUGHPUT_LIMIT
    jobs = SWEEP_THROUGHPUT_JOBS

    base = ContextPrefetcherConfig()
    configs = tuple(dataclasses.replace(base, seed=s) for s in range(n_seeds))
    plan = GridPlan(
        workloads=workloads,
        prefetchers=("context",),
        context_configs=configs,
        limit=limit,
    )

    tmp = Path(tempfile.mkdtemp(prefix="bench-batch-"))
    try:
        store = TraceStore(tmp / "traces")
        fingerprints: dict[str, str] = {}
        traces: dict[str, list] = {}
        for name in workloads:  # compile outside every timed region
            stored, _ = store.ensure(name)
            fingerprints[name] = stored.fingerprint
            traces[name] = read_trace(
                stored.path, limit=limit, expect_fingerprint=stored.fingerprint
            )

        # serial inline oracle: one process, one cell at a time
        serial: dict[tuple[str, int], object] = {}
        t0 = time.perf_counter()
        for wl_name in workloads:
            for context_id, config in enumerate(configs):
                sim = Simulator(ContextPrefetcher(config), native=True)
                serial[(wl_name, context_id)] = sim.run(
                    traces[wl_name], workload_name=wl_name
                )
        serial_s = time.perf_counter() - t0

        def run_grid(tag: str, *, kernel_batch: bool, threads: int = 0):
            db = ResultDB(tmp / f"{tag}.db")
            scheduler = SweepScheduler(
                db=db,
                store=store,
                jobs=jobs,
                native=True,
                kernel_batch=kernel_batch,
                kernel_threads=threads,
            )
            t0 = time.perf_counter()
            stats = scheduler.run_plan_sync(plan)
            elapsed = time.perf_counter() - t0
            assert stats.executed == plan.n_cells
            return db, elapsed

        legs = {
            "percell": {"kernel_batch": False},
            "batch1": {"kernel_batch": True, "threads": 1},
            "batchn": {
                "kernel_batch": True,
                "threads": BATCH_KERNEL_THREADS,
            },
        }
        times: dict[str, list[float]] = {name: [] for name in legs}
        dbs: dict[tuple[str, int], ResultDB] = {}
        for rep in range(BATCH_KERNEL_REPS):
            for name, kwargs in legs.items():
                db, elapsed = run_grid(f"{name}-r{rep}", **kwargs)
                times[name].append(elapsed)
                dbs[(name, rep)] = db

        keys = plan.cell_keys(fingerprints)
        for cell in plan.cells():
            got = dbs[("batch1", 0)].load(keys[cell.index])
            want = serial[(cell.workload, cell.context_id)]
            if got is None or encode_result(got) != encode_result(want):
                raise SystemExit(
                    "PARITY FAILURE (batch kernel vs serial): "
                    f"{cell.workload}/seed={cell.context_id} diverged; "
                    "refusing to write a benchmark report"
                )
        dumps = {tag: db.canonical_dump() for tag, db in dbs.items()}
        if len(set(dumps.values())) != 1:
            raise SystemExit(
                "PARITY FAILURE (batch kernel): canonical DB dumps differ "
                f"across {sorted(dumps)}; refusing to write a benchmark "
                "report"
            )

        percell_s = min(times["percell"])
        batch1_s = min(times["batch1"])
        batchn_s = min(times["batchn"])
        percell_rate = plan.n_cells / percell_s
        batch1_rate = plan.n_cells / batch1_s
        batchn_rate = plan.n_cells / batchn_s
        return {
            "available": True,
            "openmp": kernel_openmp(),
            "workloads": list(workloads),
            "seeds": n_seeds,
            "limit": limit,
            "jobs": jobs,
            "kernel_threads": BATCH_KERNEL_THREADS,
            "reps": BATCH_KERNEL_REPS,
            "grid_cells": plan.n_cells,
            "serial_seconds": round(serial_s, 3),
            "percell_seconds": round(percell_s, 3),
            "batch1_seconds": round(batch1_s, 3),
            "batch4_seconds": round(batchn_s, 3),
            "percell_cells_per_sec": round(percell_rate, 1),
            "batch1_cells_per_sec": round(batch1_rate, 1),
            "batch4_cells_per_sec": round(batchn_rate, 1),
            "speedup_batch1_vs_percell": round(batch1_rate / percell_rate, 2),
            "speedup_batch4_vs_percell": round(batchn_rate / percell_rate, 2),
            "parity": "bit-identical",
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def build_report(quick: bool) -> dict:
    limit = KERNEL_LIMIT_QUICK if quick else KERNEL_LIMIT
    repeats = KERNEL_REPEATS_QUICK if quick else KERNEL_REPEATS
    calibration = calibration_score()
    kernel = measure_kernel(limit=limit, repeats=repeats)
    baseline = PRE_PR4_BASELINE["accesses_per_sec"]
    speedups = {
        pf: round(kernel["accesses_per_sec"][pf] / baseline[pf], 3)
        for pf in kernel["accesses_per_sec"]
        if baseline.get(pf)
    }
    return {
        "schema": SCHEMA,
        "pr": 10,
        "quick": quick,
        "python": platform.python_version(),
        "calibration_score": round(calibration, 1),
        "kernel": {
            **kernel,
            "baseline_accesses_per_sec": dict(baseline),
            "baseline_limit": PRE_PR4_BASELINE["limit"],
            "baseline_calibration_score": PRE_PR4_BASELINE["calibration_score"],
            "speedup_vs_baseline": speedups,
        },
        "figures_seconds": measure_figures(quick),
        "trace_pipeline": measure_trace_pipeline(quick),
        "native_vs_reference": measure_native_vs_reference(quick),
        "sweep_throughput": measure_sweep_throughput(quick),
        "batch_kernel": measure_batch_kernel(quick),
    }


def check_report(path: Path, tolerance: float) -> int:
    """Re-measure the context kernel; fail on a >tolerance regression."""
    committed = json.loads(path.read_text(encoding="utf-8"))
    pinned = committed["kernel"]["accesses_per_sec"]["context"]
    pinned_cal = committed.get("calibration_score") or 0.0

    calibration = calibration_score()
    kernel = measure_kernel(
        prefetchers=("context",),
        limit=KERNEL_LIMIT_QUICK,
        repeats=KERNEL_REPEATS_QUICK,
    )
    measured = kernel["accesses_per_sec"]["context"]

    # Normalise the committed value to this machine's speed so a slower
    # CI runner is not misread as a kernel regression.
    expected = pinned
    if pinned_cal > 0:
        expected = pinned * (calibration / pinned_cal)
    floor = expected * (1.0 - tolerance)
    status = "ok" if measured >= floor else "REGRESSION"
    print(
        f"kernel check [{status}]: measured {measured:,.0f} acc/s vs "
        f"committed {pinned:,.0f} (machine-normalised floor "
        f"{floor:,.0f}, tolerance {tolerance:.0%})"
    )
    exit_code = 0 if measured >= floor else 1

    # native-vs-reference gate: speedups are same-machine ratios, so
    # they compare across machines without calibration normalisation
    section = committed.get("native_vs_reference")
    if section and section.get("available"):
        from repro.sim import native as native_pkg

        if not native_pkg.is_available():
            print(
                "native check [FAIL]: committed report pins a "
                "native_vs_reference section but the compiled kernel is "
                "unavailable here (numpy/cffi/toolchain missing)"
            )
            return 1
        remeasured = measure_native_vs_reference(quick=True)
        for pf, row in section["families"].items():
            if not row.get("native_handled"):
                continue  # a pinned fallback row carries no speedup claim
            got = remeasured["families"][pf]["speedup"]
            # the quick grid amortises fixed per-run overhead over fewer
            # accesses, so its ratio reads systematically below the
            # committed full-grid number; double the tolerance to absorb
            # that bias, and never let the floor drop below the 5x the
            # acceptance criterion claims
            native_floor = max(5.0, row["speedup"] * (1.0 - 2.0 * tolerance))
            ok = got >= native_floor
            print(
                f"native check [{'ok' if ok else 'REGRESSION'}]: {pf} "
                f"{got:.2f}x vs committed {row['speedup']:.2f}x "
                f"(floor {native_floor:.2f}x)"
            )
            if not ok:
                exit_code = 1

    def rate_sane(section: str, committed_rate: float, measured_rate: float) -> bool:
        """Calibration-normalised sanity floor for a committed cells/s.

        Quick grids have a different shape than the committed full
        grid, so the floor is deliberately loose (15% of the
        machine-normalised committed rate): it catches a committed
        number that is wrong by an order of magnitude, not a few
        percent of drift.
        """
        if pinned_cal <= 0:
            return True
        expected_rate = committed_rate * (calibration / pinned_cal)
        rate_floor = 0.15 * expected_rate
        ok = measured_rate >= rate_floor
        print(
            f"{section} rate [{'ok' if ok else 'REGRESSION'}]: quick grid "
            f"{measured_rate:,.1f} cells/s vs committed "
            f"{committed_rate:,.1f} (machine-normalised "
            f"{expected_rate:,.1f}, sanity floor {rate_floor:,.1f})"
        )
        return ok

    # sweep-throughput gate: the warm scheduler must beat the PR 5
    # dispatch ≥3x on the quick grid here and now (the quick grid's
    # smaller fan-out understates the full-grid ratio by far more than
    # any regression the gate should catch), and the committed full-grid
    # number must meet the ≥5x acceptance floor
    sweep = committed.get("sweep_throughput")
    if sweep:
        pinned_ratio = sweep["speedup_warm_vs_legacy"]
        remeasured = measure_sweep_throughput(quick=True)
        got_ratio = remeasured["speedup_warm_vs_legacy"]
        quick_ok = got_ratio >= 3.0
        full_ok = pinned_ratio >= 5.0
        print(
            f"sweep check [{'ok' if quick_ok else 'REGRESSION'}]: warm "
            f"scheduler {got_ratio:.1f}x vs legacy dispatch on the quick "
            f"grid ({remeasured['grid_cells']} cells, floor 3.0x)"
        )
        print(
            f"sweep check [{'ok' if full_ok else 'FAIL'}]: committed "
            f"full-grid ratio {pinned_ratio:.1f}x on "
            f"{sweep['grid_cells']} cells (acceptance floor 5.0x)"
        )
        rate_ok = rate_sane(
            "sweep check",
            sweep["warm_cells_per_sec"],
            remeasured["warm_cells_per_sec"],
        )
        if not (quick_ok and full_ok and rate_ok):
            exit_code = 1

    # batch-kernel gate: the committed full-grid ratios must meet the
    # PR 10 acceptance floors, and a quick grid must show the batch
    # driver beating the per-cell path here and now (loose 1.3x floor —
    # the smaller grid amortises the pool spawn over far fewer cells)
    batch = committed.get("batch_kernel")
    if batch and batch.get("available"):
        from repro.sim import native as native_pkg

        if not native_pkg.is_available():
            print(
                "batch check [FAIL]: committed report pins a batch_kernel "
                "section but the compiled kernel is unavailable here"
            )
            return 1
        if not batch.get("openmp"):
            print(
                "batch check [FAIL]: committed batch_kernel section was "
                "measured without the OpenMP build — its thread-scaling "
                "numbers are not the ones this section exists to pin"
            )
            return 1
        remeasured = measure_batch_kernel(quick=True)
        got_ratio = remeasured["speedup_batch4_vs_percell"]
        quick_ok = got_ratio >= 1.3
        full1_ok = batch["speedup_batch1_vs_percell"] >= 1.5
        full4_ok = batch["speedup_batch4_vs_percell"] >= 5.0
        print(
            f"batch check [{'ok' if quick_ok else 'REGRESSION'}]: in-kernel "
            f"batch {got_ratio:.2f}x vs per-cell on the quick grid "
            f"({remeasured['grid_cells']} cells, floor 1.30x)"
        )
        print(
            f"batch check [{'ok' if full1_ok else 'FAIL'}]: committed "
            f"1-thread full-grid ratio "
            f"{batch['speedup_batch1_vs_percell']:.2f}x "
            "(acceptance floor 1.50x)"
        )
        print(
            f"batch check [{'ok' if full4_ok else 'FAIL'}]: committed "
            f"{batch['kernel_threads']}-thread full-grid ratio "
            f"{batch['speedup_batch4_vs_percell']:.2f}x "
            "(acceptance floor 5.00x)"
        )
        rate_ok = rate_sane(
            "batch check",
            batch["batch4_cells_per_sec"],
            remeasured["batch4_cells_per_sec"],
        )
        if not (quick_ok and full1_ok and full4_ok and rate_ok):
            exit_code = 1
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out", type=Path, default=REPO / "BENCH_10.json", help="output path"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="FILE",
        help="verify the kernel against a committed BENCH_*.json instead",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    parser.add_argument(
        "--capture-baseline",
        action="store_true",
        help="print kernel numbers formatted for PRE_PR4_BASELINE",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        return check_report(args.check, args.tolerance)

    if args.capture_baseline:
        kernel = measure_kernel()
        print(json.dumps(kernel["accesses_per_sec"], indent=2))
        print(f"calibration_score: {calibration_score():.1f}")
        return 0

    report = build_report(args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    context = report["kernel"]["accesses_per_sec"].get("context")
    speedup = report["kernel"]["speedup_vs_baseline"].get("context")
    if context is not None:
        line = f"context kernel: {context:,.0f} accesses/sec"
        if speedup is not None:
            line += f" ({speedup:.2f}x vs pre-PR-4 baseline)"
        print(line)
    dispatch = report["trace_pipeline"]["dispatch"]
    print(
        f"trace pipeline: warm-store dispatch "
        f"{dispatch['store_warm_seconds']}s vs legacy "
        f"{dispatch['legacy_seconds']}s "
        f"({dispatch['speedup_warm_vs_legacy']:.2f}x, parity "
        f"{dispatch['parity']})"
    )
    native = report["native_vs_reference"]
    if native.get("available"):
        handled = {
            pf: row["speedup"]
            for pf, row in native["families"].items()
            if row["native_handled"]
        }
        if handled:
            print(
                "native kernel: "
                f"{min(handled.values()):.1f}x-{max(handled.values()):.1f}x "
                f"vs interpreted across {len(handled)} native families "
                "(parity bit-identical)"
            )
        ctx_row = native["families"].get("context")
        if ctx_row is not None and ctx_row["native_handled"]:
            print(
                f"context native: {ctx_row['speedup']:.1f}x vs the "
                "interpreted RL loop (parity bit-identical)"
            )
    else:
        print("native kernel: unavailable (numpy/cffi/toolchain)")
    sweep = report["sweep_throughput"]
    print(
        f"sweep throughput: warm scheduler {sweep['warm_cells_per_sec']:.0f} "
        f"cells/s over {sweep['grid_cells']} cells vs legacy dispatch "
        f"{sweep['legacy_cells_per_sec']:.1f} cells/s "
        f"({sweep['speedup_warm_vs_legacy']:.1f}x, parity {sweep['parity']})"
    )
    batch = report["batch_kernel"]
    if batch.get("available"):
        print(
            f"batch kernel: {batch['batch4_cells_per_sec']:.0f} cells/s at "
            f"{batch['kernel_threads']} threads / "
            f"{batch['batch1_cells_per_sec']:.0f} at 1 vs per-cell "
            f"{batch['percell_cells_per_sec']:.0f} "
            f"({batch['speedup_batch4_vs_percell']:.2f}x / "
            f"{batch['speedup_batch1_vs_percell']:.2f}x, "
            f"openmp={'on' if batch['openmp'] else 'off'}, "
            f"parity {batch['parity']})"
        )
    else:
        print("batch kernel: unavailable (numpy/cffi/toolchain)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
