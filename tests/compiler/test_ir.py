"""Tests for the mini-IR: structs, builder, validation."""

import pytest

from repro.compiler.ir import (
    FunctionBuilder,
    Jump,
    StructDecl,
    is_pointer_type,
)


class TestStructDecl:
    def test_field_info(self):
        s = StructDecl("node", (("value", 0, "int"), ("next", 8, "ptr:node")))
        assert s.field_info("next") == (8, "ptr:node")

    def test_unknown_field(self):
        s = StructDecl("node", (("value", 0, "int"),))
        with pytest.raises(KeyError):
            s.field_info("nope")

    def test_size_rounds_to_words(self):
        s = StructDecl("node", (("a", 0, "int"), ("b", 12, "int")))
        assert s.size == 24  # 12 + 8 rounded up

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            StructDecl("s", (("a", 0, "int"), ("a", 8, "int")))

    def test_duplicate_offset_rejected(self):
        with pytest.raises(ValueError):
            StructDecl("s", (("a", 0, "int"), ("b", 0, "int")))


class TestPointerTypes:
    @pytest.mark.parametrize("name", ["ptr", "ptr:node", "ptr:edge"])
    def test_pointers(self, name):
        assert is_pointer_type(name)

    @pytest.mark.parametrize("name", ["int", "float", "ptrish"])
    def test_non_pointers(self, name):
        assert not is_pointer_type(name)


class TestBuilderAndValidation:
    def _trivial(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret(0)
        return fb

    def test_entry_is_first_block(self):
        fn = self._trivial().build()
        assert fn.entry == "entry"

    def test_empty_block_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret(0)
        fb.block("orphan")
        with pytest.raises(ValueError, match="empty|terminator"):
            fb.build()

    def test_missing_terminator_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.arith("x", "add", 1, 2)
        with pytest.raises(ValueError, match="terminator"):
            fb.build()

    def test_mid_block_terminator_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret(0)
        fb._current.append(Jump("entry"))
        with pytest.raises(ValueError, match="terminator"):
            fb.build()

    def test_branch_to_unknown_block_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.jump("nowhere")
        with pytest.raises(ValueError, match="unknown block"):
            fb.build()

    def test_load_of_unknown_struct_rejected(self):
        fb = FunctionBuilder("f", params=("p",))
        fb.block("entry")
        fb.load("x", "p", "ghost", "field")
        fb.ret("x")
        with pytest.raises(ValueError, match="unknown struct"):
            fb.build()

    def test_duplicate_block_rejected(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret(0)
        with pytest.raises(ValueError, match="duplicate"):
            fb.block("entry")

    def test_emit_outside_block_rejected(self):
        fb = FunctionBuilder("f")
        with pytest.raises(ValueError, match="no open block"):
            fb.ret(0)
