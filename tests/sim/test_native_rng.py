"""The C MT19937 against CPython's ``random.Random``, bit for bit.

The context kernel's exactness argument rests on reproducing CPython's
RNG exactly: seeding (``init_by_array`` over the little-endian u32 words
of ``|seed|``), ``random()`` (``genrand_res53``), ``choice`` (the
rejection-sampling ``_randbelow``) and ``choices`` (cumulative-weight
``bisect_right`` over ``random() * total``).  This suite compares long
draw sequences across a spread of seeds — including the exact float
comparisons the bandit makes at its adaptive-ε and shadow-probability
branch points, where a one-ulp divergence would flip a branch.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.sim import native as native_pkg

pytestmark = pytest.mark.skipif(
    not native_pkg.is_available(),
    reason="compiled kernel unavailable (numpy/cffi/toolchain)",
)

#: 32 seeds spanning the shapes ``random_seed`` key-folds differently:
#: zero, small ints, word-boundary values, multi-word ints, the default
SEEDS = (
    [0, 1, 2, 3, 7, 31, 0x5EED, 0xDEAD, 12345, 99999]
    + [(1 << 31) - 1, 1 << 31, (1 << 32) - 1, 1 << 32, (1 << 40) + 12345]
    + [(1 << 63) - 1, 1 << 63, (1 << 64) - 1, 1 << 64, 987654321987654321]
    + [(1 << 96) + 17, (1 << 128) - 1, 3141592653589793238462643383279]
    + [-1, -0x5EED, -(1 << 40), 5, 6, 8, 9, 10, 11]
)
assert len(SEEDS) == 32

NUM_RANDOM = 10_000
NUM_CHOICE = 2_000
NUM_CHOICES = 2_000

#: the bandit's default branch thresholds: adaptive ε endpoints, the
#: fixed-ε ablation value and the shadow probability
BRANCH_POINTS = (0.01, 0.05, 0.10, 0.20)


def _rng_pair(kernel, seed):
    """(CPython Random, C RpRng) seeded identically."""
    ffi, lib = kernel.ffi, kernel.lib
    v = abs(int(seed))
    words = []
    while v:
        words.append(v & 0xFFFFFFFF)
        v >>= 32
    words = words or [0]
    key = ffi.new("uint32_t[]", words)
    handle = ffi.gc(lib.rp_rng_new(key, len(words)), lib.rp_rng_free)
    return random.Random(seed), handle


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


@pytest.fixture(scope="module")
def kernel():
    from repro.sim.native.build import kernel_or_none

    k = kernel_or_none()
    assert k is not None
    return k


class TestRandomDraws:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_bit_exact(self, kernel, seed):
        py, c = _rng_pair(kernel, seed)
        lib = kernel.lib
        for i in range(NUM_RANDOM):
            a = py.random()
            b = lib.rp_rng_random(c)
            assert _bits(a) == _bits(b), f"seed {seed} draw {i}: {a!r} != {b!r}"

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_branch_point_comparisons(self, kernel, seed):
        # the ε-greedy arm takes `random() < eps` and `random() < p`
        # branches; identical bits imply identical branches, but assert
        # the comparisons directly at every default threshold as a belt
        py, c = _rng_pair(kernel, seed)
        lib = kernel.lib
        for _ in range(NUM_RANDOM):
            a = py.random()
            b = lib.rp_rng_random(c)
            for eps in BRANCH_POINTS:
                assert (a < eps) == (b < eps)
            # adaptive ε sweeps eps_min + range * (1 - ema); sample the
            # annealed values the default config can produce
            for ema in (0.0, 0.25, 0.5, 0.75, 1.0):
                eps = 0.01 + 0.19 * (1.0 - ema)
                assert (a < eps) == (b < eps)


class TestChoice:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_choice_indices(self, kernel, seed):
        py, c = _rng_pair(kernel, seed)
        lib = kernel.lib
        # the bandit calls choice() over the ranked candidate list whose
        # length is 1..cst_links; cycle through realistic sizes
        for i in range(NUM_CHOICE):
            n = (i % 7) + 1
            seq = list(range(n))
            a = py.choice(seq)
            b = lib.rp_rng_choice_index(c, n)
            assert a == b, f"seed {seed} draw {i} (n={n})"


class TestChoices:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_choices_indices(self, kernel, seed):
        py, c = _rng_pair(kernel, seed)
        ffi, lib = kernel.ffi, kernel.lib
        # softmax weights: exp((score - top) / tau) in (0, 1]; mirror the
        # shape with deterministic pseudo-weights from a separate RNG
        wrng = random.Random(0xBEEF ^ (abs(int(seed)) & 0xFFFF))
        for i in range(NUM_CHOICES):
            n = (i % 5) + 1
            weights = [wrng.random() + 1e-9 for _ in range(n)]
            seq = list(range(n))
            a = py.choices(seq, weights)[0]
            b = lib.rp_rng_choices_index(c, ffi.new("double[]", weights), n)
            assert a == b, f"seed {seed} draw {i} (n={n})"


class TestGetrandbits:
    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_getrandbits_words(self, kernel, seed):
        py, c = _rng_pair(kernel, seed)
        lib = kernel.lib
        for i in range(2_000):
            k = (i % 32) + 1
            assert py.getrandbits(k) == lib.rp_rng_getrandbits(c, k)
