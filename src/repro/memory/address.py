"""Address arithmetic helpers.

The paper's context prefetcher operates at 32-byte block granularity
(Section 7.3: finer granularities thrash its tables), while the caches use
64-byte lines.  These helpers centralise the alignment math so no module
hand-rolls shifts.
"""

from __future__ import annotations

#: Granularity at which the context prefetcher tracks addresses (bytes).
BLOCK_BYTES = 32

#: Cache line size used by both cache levels (bytes).
LINE_BYTES = 64

#: Size of the virtual address space modelled (48-bit, x86-64 canonical).
ADDRESS_BITS = 48
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity`` (a power of two)."""
    return addr & ~(granularity - 1)


def block_of(addr: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Return the block number containing byte address ``addr``."""
    return addr // block_bytes


def block_to_addr(block: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Return the first byte address of block number ``block``."""
    return block * block_bytes


def line_of(addr: int, line_bytes: int = LINE_BYTES) -> int:
    """Return the cache-line number containing byte address ``addr``."""
    return addr // line_bytes


def line_to_addr(line: int, line_bytes: int = LINE_BYTES) -> int:
    """Return the first byte address of cache line number ``line``."""
    return line * line_bytes


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def lines_of_array(addrs, line_bytes: int = LINE_BYTES):
    """Cache-line numbers for a whole address column, array-at-a-time.

    ``addrs`` is a numpy array of unsigned byte addresses; the result is a
    fresh contiguous array of the same shape.  Line sizes are validated as
    powers of two by :class:`~repro.memory.cache.CacheConfig`, so the
    division compiles to a vectorized shift.  This is the batch counterpart
    of :func:`line_of` used by the native kernel's decode phase.
    """
    return addrs // line_bytes


def max_address(addrs) -> int:
    """Largest address in a column (0 for an empty column).

    The native kernel does its delta arithmetic in 64-bit integers, which
    is exact only while addresses stay inside the modelled
    :data:`ADDRESS_BITS` space — callers compare this against
    ``ADDRESS_MASK`` to decide batch eligibility.
    """
    if len(addrs) == 0:
        return 0
    return int(addrs.max())
