"""Figure 5: the bell-shaped reward function.

Regenerates the (hit depth, reward) curve: negative for prefetches that
hit too late to hide latency, a bell over the effective prefetch window
(18–50 accesses, peaking at the ~30-access average target distance of
Section 4.3), and negative again for prefetches so early the line risks
eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reward import RewardFunction, target_prefetch_distance
from repro.experiments.report import render_series


@dataclass
class Figure5Result:
    curve: list[tuple[int, int]]
    window: tuple[int, int]
    center: int
    peak: int
    #: the Section 4.3 worked example for the Table 2 system
    example_distance: float


def run(max_depth: int = 80) -> Figure5Result:
    reward = RewardFunction()
    # Section 4.3's formula instantiated with Table 2 latencies and
    # typical workload parameters (IPC ~1, one memory op per ~3 insts,
    # 25% L2 miss rate): lands near the ~30-access average the paper cites.
    example = target_prefetch_distance(
        l2_latency=20,
        l2_miss_rate=0.25,
        dram_latency=300,
        ipc=1.0,
        prob_mem_op=1 / 3,
    )
    return Figure5Result(
        curve=reward.curve(max_depth),
        window=(reward.lo, reward.hi),
        center=reward.center,
        peak=reward.peak,
        example_distance=example,
    )


def render(result: Figure5Result) -> str:
    sampled = [(d, r) for d, r in result.curve if d % 4 == 0]
    header = (
        f"Figure 5 — reward function (window {result.window[0]}–"
        f"{result.window[1]}, peak {result.peak} at depth {result.center}; "
        f"example target distance {result.example_distance:.0f} accesses)"
    )
    return render_series(
        sampled, title=header, label_x="depth", label_y="reward"
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
