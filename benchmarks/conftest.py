"""Shared fixtures for the figure-regeneration benchmarks.

The sweep behind Figures 9–12 is expensive, so it runs once per session
(``bench_sweep``); the per-figure benchmarks then measure regenerating
each figure from it.  The sweep itself is benchmarked separately in
``test_bench_sweep.py``.

The result cache is always disabled here — benchmarks must measure
simulation, not disk reads.  Set ``REPRO_BENCH_JOBS=N`` to run the
benchmark sweeps through the parallel engine (the parity suite
guarantees the numbers themselves cannot change, only wall-clock time).
"""

import os

import pytest

from repro.workloads.suites import get_workload

#: the workload subset used by benchmark sweeps: one representative per
#: behaviour class, small enough for a minutes-scale benchmark session
BENCH_WORKLOADS = ("lbm", "mcf", "array", "list", "graph500-list", "graph500-csr")
BENCH_LIMIT = 20000


def bench_jobs() -> int:
    """Worker-process count for benchmark sweeps (default: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def bench_sweep_impl(jobs: int | None = None):
    workloads = [get_workload(name) for name in BENCH_WORKLOADS]
    from repro.sim.runner import compare

    return compare(
        workloads,
        limit=BENCH_LIMIT,
        jobs=bench_jobs() if jobs is None else jobs,
        cache=False,
    )


@pytest.fixture(scope="session")
def bench_sweep():
    return bench_sweep_impl()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
