"""Tests for cache statistics and the Figure 9 classifier."""

import pytest

from repro.memory.stats import (
    ACCESS_CLASS_ORDER,
    AccessClass,
    AccessClassifier,
    CacheStats,
)


class TestCacheStats:
    def test_initial_rates_are_zero(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0
        assert stats.mpki(1000) == 0.0

    def test_record_accumulates(self):
        stats = CacheStats()
        stats.record(hit=True)
        stats.record(hit=True)
        stats.record(hit=False)
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_mpki_definition(self):
        stats = CacheStats()
        for _ in range(40):
            stats.record(hit=False)
        # 40 misses in 1000 instructions = 40 MPKI (the paper's L2 average
        # without prefetching, Section 7.2)
        assert stats.mpki(1000) == pytest.approx(40.0)

    def test_mpki_guards_zero_instructions(self):
        stats = CacheStats()
        stats.record(hit=False)
        assert stats.mpki(0) == 0.0


class TestAccessClassifier:
    def test_fractions_sum_to_one_without_wasted(self):
        clf = AccessClassifier()
        clf.record_demand(AccessClass.HIT_PREFETCHED)
        clf.record_demand(AccessClass.MISS_NOT_PREFETCHED)
        total = sum(clf.fractions().values())
        assert total == pytest.approx(1.0)

    def test_wasted_prefetches_push_past_one(self):
        # Paper: "These wrong predictions are counted on top of the
        # program's demand accesses, and therefore pass the 100% mark."
        clf = AccessClassifier()
        clf.record_demand(AccessClass.HIT_OLDER_DEMAND)
        clf.record_wasted_prefetch(3)
        assert sum(clf.fractions().values()) == pytest.approx(4.0)

    def test_wasted_is_not_a_demand_class(self):
        clf = AccessClassifier()
        with pytest.raises(ValueError):
            clf.record_demand(AccessClass.PREFETCH_NEVER_HIT)

    def test_useful_fraction_counts_hits_and_shorter_waits(self):
        clf = AccessClassifier()
        clf.record_demand(AccessClass.HIT_PREFETCHED)
        clf.record_demand(AccessClass.SHORTER_WAIT)
        clf.record_demand(AccessClass.NON_TIMELY)
        clf.record_demand(AccessClass.MISS_NOT_PREFETCHED)
        assert clf.useful_fraction() == pytest.approx(0.5)

    def test_empty_classifier_fractions(self):
        clf = AccessClassifier()
        assert all(v == 0.0 for v in clf.fractions().values())
        assert clf.useful_fraction() == 0.0

    def test_order_matches_paper_stack(self):
        names = [cls.name for cls in ACCESS_CLASS_ORDER]
        assert names[0] == "HIT_PREFETCHED"
        assert names[-1] == "PREFETCH_NEVER_HIT"
        assert len(names) == 6
