"""Hot-path performance rules (``PERF*``).

The per-access simulation loop constructs and touches objects of the
classes defined under ``core/``, ``prefetchers/``, ``memory/`` and
``cpu/`` millions of times per sweep.  A class without ``__slots__``
carries a per-instance ``__dict__`` — slower attribute access and a
~3× memory footprint — so the hot-path modules must opt every class
into slotted layout:

* ``PERF001`` — a class in a hot-path module declares neither
  ``__slots__`` nor ``@dataclass(slots=True)`` and is not one of the
  layouts that manage their own storage (``NamedTuple``, enums,
  exceptions).  Legitimately dict-backed classes are listed in
  :data:`DICT_BACKED_ALLOWLIST` (budget-style: the allowlist *is* the
  inventory, so growing it is a reviewed decision).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule
from repro.analysis.visitor import NodeRule, SourceFile

#: modules whose classes live on the per-access path
HOT_DIRS = ("core/", "prefetchers/", "memory/", "cpu/")

#: base classes that manage instance storage themselves
_SELF_STORING_BASES = frozenset(
    {"NamedTuple", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Protocol"}
)

#: ``rel-path:ClassName`` entries reviewed as legitimately dict-backed
DICT_BACKED_ALLOWLIST = frozenset(
    {
        # frozen dataclasses that derive ``_bell_denom`` in __post_init__
        # via object.__setattr__; declaring it as a field would leak the
        # derived value into asdict()/repr comparisons, and the objects
        # are constructed once per run, not per access
        "core/reward.py:RewardFunction",
        "core/reward.py:FlatRewardFunction",
    }
)


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = (
            deco.func.attr
            if isinstance(deco.func, ast.Attribute)
            else getattr(deco.func, "id", "")
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


@register_rule
class SlotsRule(NodeRule):
    """PERF001: hot-path classes must use slotted instance layout."""

    rule_id = "PERF001"
    title = "hot-path class without __slots__"
    node_types = (ast.ClassDef,)
    scope = HOT_DIRS

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.ClassDef)
        bases = _base_names(node)
        if any(base in _SELF_STORING_BASES for base in bases):
            return
        if any(base.endswith(("Error", "Exception")) for base in bases):
            return
        if _declares_slots(node) or _dataclass_with_slots(node):
            return
        if f"{source.rel}:{node.name}" in DICT_BACKED_ALLOWLIST:
            return
        yield Finding(
            source.rel,
            node.lineno,
            self.rule_id,
            f"{node.name} is on the hot path but has no __slots__ "
            "(declare __slots__, use @dataclass(slots=True), or add a "
            "reviewed entry to DICT_BACKED_ALLOWLIST)",
        )
