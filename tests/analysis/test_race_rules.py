"""RACE family: fixture packages with known fork-safety violations."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze, load_project
from repro.analysis.rules.race import ForkSafetyRule


def run_race(root: Path, files: dict[str, str]) -> list:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    project = load_project(root, manifest={})
    return analyze(project=project, rules=[ForkSafetyRule()])


# indented to match the fixture bodies so the concatenation dedents
POOL_HEADER = """
                from concurrent.futures import ProcessPoolExecutor
"""


class TestRace001SharedMutables:
    def test_worker_write_parent_read_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                _RESULTS = {}

                def _worker(job):
                    _RESULTS[job] = job * 2
                    return job

                def run_all(jobs):
                    with ProcessPoolExecutor() as pool:
                        for j in jobs:
                            pool.submit(_worker, j)
                    return {j: _RESULTS.get(j) for j in jobs}
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE001"]
        assert "_RESULTS" in findings[0].message
        assert "_worker" in findings[0].message

    def test_parent_write_worker_read_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                _CONFIG = {}

                def configure(k, v):
                    _CONFIG[k] = v

                def _worker(job):
                    return _CONFIG.get(job)

                def run_all(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_worker, j) for j in jobs]
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE001"]
        assert "import-time value" in findings[0].message

    def test_worker_only_memo_is_clean(self, tmp_path):
        # the _WORKER_TRACE_MEMO pattern: written and read on the worker
        # side only — per-process state is the supported idiom
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                _MEMO = {}

                def _worker(job):
                    cached = _MEMO.get(job)
                    if cached is None:
                        cached = job * 2
                        _MEMO[job] = cached
                    return cached

                def run_all(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_worker, j) for j in jobs]
                """
            },
        )
        assert findings == []

    def test_import_time_registration_is_clean(self, tmp_path):
        # registry populated at module scope (spawn re-runs it in every
        # process) then read by workers: the suites.py pattern
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                _REGISTRY = {}

                def _register(name):
                    _REGISTRY[name] = name.upper()

                _register("a")
                _register("b")

                def _worker(job):
                    return _REGISTRY[job]

                def run_all(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_worker, j) for j in jobs]
                """
            },
        )
        assert findings == []


class TestRace002Rng:
    def test_global_random_call_in_worker_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                import random

                def _job(seed):
                    return random.random()

                def run(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, j) for j in jobs]
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE002"]
        assert "random.random()" in findings[0].message

    def test_config_seeded_rng_is_clean(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                import random

                def _job(seed):
                    rng = random.Random(seed)
                    return rng.random()

                def run(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, j) for j in jobs]
                """
            },
        )
        assert findings == []

    def test_unseeded_random_instance_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                import random

                def _job(n):
                    rng = random.Random()
                    return rng.random()

                def run(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, j) for j in jobs]
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE002"]
        assert "no seed" in findings[0].message

    def test_module_level_rng_read_from_worker_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                import random

                _RNG = random.Random(1234)

                def _job(n):
                    return _RNG.random()

                def run(jobs):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, j) for j in jobs]
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE002"]
        assert "_RNG" in findings[0].message

    def test_random_instance_in_submit_args_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                import random

                def _job(rng):
                    return rng.random()

                def run(jobs):
                    rng = random.Random(7)
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, rng) for j in jobs]
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE002"]
        assert "pickled RNG state" in findings[0].message


class TestRace003Handles:
    def test_open_handle_in_submit_args_is_flagged(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                def _job(fh):
                    return fh.read()

                def run(paths):
                    with ProcessPoolExecutor() as pool:
                        futures = []
                        for p in paths:
                            fh = open(p, "rb")
                            futures.append(pool.submit(_job, fh))
                    return futures
                """
            },
        )
        assert [f.rule for f in findings] == ["RACE003"]
        assert "open(" in findings[0].message

    def test_path_arguments_are_clean(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "par.py": POOL_HEADER
                + """
                def _job(path):
                    with open(path, "rb") as fh:
                        return fh.read()

                def run(paths):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(_job, p) for p in paths]
                """
            },
        )
        assert findings == []

    def test_no_executor_means_no_findings(self, tmp_path):
        findings = run_race(
            tmp_path,
            {
                "serial.py": """
                STATE = {}

                def tick(k):
                    STATE[k] = k
                """
            },
        )
        assert findings == []
