"""Prefetcher-contract rules (``CON*``).

Every prefetcher — the baselines and the paper's context prefetcher —
must plug into the simulator through the same interface, and must be
reachable from the factory registry the runner/CLI use.  A prefetcher
that drifts from the contract fails at a distance (a sweep silently
skips it, or the simulator dies mid-run), so the contract is checked
statically:

* ``CON001`` — a ``*Prefetcher`` class does not (transitively)
  subclass :class:`repro.prefetchers.base.Prefetcher`;
* ``CON002`` — an incompatible method signature (``on_access`` must
  take exactly ``(self, access)``; ``on_prefetch_issue`` must take
  ``(self, request, issued, reason)``), or a concrete prefetcher that
  never defines ``on_access``;
* ``CON003`` — a concrete prefetcher is not registered in
  ``PREFETCHER_FACTORIES`` (``sim/config.py``);
* ``CON004`` — a concrete prefetcher never sets a report ``name``
  (class attribute or ``self.name = ...``), so figures would label it
  with the base-class placeholder;
* ``CON005`` — the base class does not define ``accuracy()`` (the
  simulator reads it unconditionally for every
  ``SimulationResult.prefetcher_accuracy``), or an override changes
  its ``(self)`` signature.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project, SourceFile, top_level_classes

BASE_FILE = "prefetchers/base.py"
BASE_CLASS = "Prefetcher"
FACTORY_FILE = "sim/config.py"
FACTORY_NAME = "PREFETCHER_FACTORIES"
#: modules that may define concrete prefetchers
PREFETCHER_DIRS = ("prefetchers/", "core/prefetcher.py")

#: method name -> expected positional parameters after ``self``
SIGNATURES = {
    "accuracy": [],
    "on_access": ["access"],
    "on_prefetch_issue": ["request", "issued", "reason"],
}


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(cls: ast.ClassDef) -> bool:
    for base in _base_names(cls):
        if base in ("ABC", "ABCMeta"):
            return True
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
                if name == "abstractmethod":
                    return True
    return False


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _positional_params(fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _sets_name_attribute(cls: ast.ClassDef) -> bool:
    """True when the class assigns ``name`` or any method sets ``self.name``."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "name":
                return True
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "name"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
    return False


def registered_factory_classes(source: SourceFile) -> set[str] | None:
    """Class names referenced in the PREFETCHER_FACTORIES dict, or None."""
    for stmt in source.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == FACTORY_NAME:
                value = stmt.value
                if not isinstance(value, ast.Dict):
                    return None
                names: set[str] = set()
                for entry in value.values:
                    for node in ast.walk(entry):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
                        elif isinstance(node, ast.Attribute):
                            names.add(node.attr)
                return names
    return None


@register_rule
class PrefetcherContractRule(Rule):
    """CON*: the prefetcher interface and factory wiring."""

    rule_id = "CON"
    title = "prefetchers implement the base contract and are registered"

    def check(self, project: Project) -> Iterator[Finding]:
        # 1. collect every class in the prefetcher modules
        classes: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        for source in project.in_dir(*PREFETCHER_DIRS):
            for name, cls in top_level_classes(source.tree).items():
                classes[name] = (source, cls)

        if BASE_CLASS not in classes:
            yield Finding(
                BASE_FILE, 0, "CON001", f"base class {BASE_CLASS} not found"
            )
            return

        base_source, base_cls = classes[BASE_CLASS]
        if "accuracy" not in _methods(base_cls):
            yield Finding(
                base_source.rel,
                base_cls.lineno,
                "CON005",
                f"{BASE_CLASS} must define accuracy() with a 0.0 default — "
                "the simulator reads it unconditionally for "
                "SimulationResult.prefetcher_accuracy",
            )

        def subclasses_base(name: str, seen: frozenset[str] = frozenset()) -> bool:
            if name == BASE_CLASS:
                return True
            entry = classes.get(name)
            if entry is None or name in seen:
                return False
            return any(
                subclasses_base(base, seen | {name})
                for base in _base_names(entry[1])
            )

        factory_source = project.get(FACTORY_FILE)
        registered = (
            registered_factory_classes(factory_source)
            if factory_source is not None
            else None
        )
        if registered is None:
            yield Finding(
                FACTORY_FILE,
                0,
                "CON003",
                f"{FACTORY_NAME} dict not found or not statically readable",
            )

        for name in sorted(classes):
            source, cls = classes[name]
            if not name.endswith("Prefetcher") or name.startswith("_"):
                continue
            if name == BASE_CLASS:
                continue
            if not subclasses_base(name):
                yield Finding(
                    source.rel,
                    cls.lineno,
                    "CON001",
                    f"{name} does not subclass {BASE_CLASS}; every "
                    "prefetcher must implement the common interface",
                )
                continue
            if _is_abstract(cls):
                continue
            yield from self._check_signatures(source, cls, classes)
            if registered is not None and name not in registered:
                yield Finding(
                    source.rel,
                    cls.lineno,
                    "CON003",
                    f"{name} is not registered in {FACTORY_NAME} "
                    f"({FACTORY_FILE}); the runner/CLI cannot reach it",
                )
            yield from self._check_name(source, cls, classes)

    # ------------------------------------------------------------------

    def _mro_chain(
        self,
        cls: ast.ClassDef,
        classes: dict[str, tuple[SourceFile, ast.ClassDef]],
    ) -> list[ast.ClassDef]:
        """The class and its statically resolvable ancestors (base last)."""
        chain: list[ast.ClassDef] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in _base_names(current):
                entry = classes.get(base)
                if entry is not None:
                    stack.append(entry[1])
        return chain

    def _check_signatures(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        classes: dict[str, tuple[SourceFile, ast.ClassDef]],
    ) -> Iterator[Finding]:
        chain = self._mro_chain(cls, classes)
        for method, expected in sorted(SIGNATURES.items()):
            fn = _methods(cls).get(method)
            if fn is not None:
                params = _positional_params(fn)
                want = ["self", *expected]
                if params != want:
                    yield Finding(
                        source.rel,
                        fn.lineno,
                        "CON002",
                        f"{cls.name}.{method} takes ({', '.join(params)}) "
                        f"but the contract is ({', '.join(want)})",
                    )
            elif method == "on_access":
                # on_access is abstract in the base: a concrete prefetcher
                # must define it somewhere in its (static) MRO
                defined = any(
                    method in _methods(ancestor)
                    for ancestor in chain
                    if ancestor.name != BASE_CLASS
                )
                if not defined:
                    yield Finding(
                        source.rel,
                        cls.lineno,
                        "CON002",
                        f"{cls.name} never defines on_access; the simulator "
                        "cannot drive it",
                    )

    def _check_name(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        classes: dict[str, tuple[SourceFile, ast.ClassDef]],
    ) -> Iterator[Finding]:
        chain = self._mro_chain(cls, classes)
        if any(
            _sets_name_attribute(ancestor)
            for ancestor in chain
            if ancestor.name != BASE_CLASS
        ):
            return
        yield Finding(
            source.rel,
            cls.lineno,
            "CON004",
            f"{cls.name} never sets a report `name`; figures would label "
            "it with the base-class placeholder",
        )
