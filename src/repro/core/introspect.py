"""Introspection over a trained context prefetcher's state.

Answers the questions a user debugging a workload asks: which contexts
carry the strongest associations, which attribute subsets did the
Reducer settle on, how full are the tables, and what does the learned
delta distribution look like.  Everything is read-only.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.attributes import AttributeSet
from repro.core.prefetcher import ContextPrefetcher
from repro.experiments.report import render_table


@dataclass(frozen=True, slots=True)
class ContextSummary:
    """One CST entry's learned state."""

    index: int
    tag: int
    candidates: tuple[tuple[int, int], ...]  # (delta, score), best first
    ptr_count: int
    lookups: int

    @property
    def best_score(self) -> int:
        return self.candidates[0][1] if self.candidates else 0


def top_contexts(prefetcher: ContextPrefetcher, count: int = 10) -> list[ContextSummary]:
    """The ``count`` CST entries with the highest-scoring candidates."""
    summaries = []
    for index, entry in prefetcher.cst._entries.items():
        ranked = tuple((c.delta, c.score) for c in entry.ranked())
        summaries.append(
            ContextSummary(
                index=index,
                tag=entry.tag,
                candidates=ranked,
                ptr_count=entry.ptr_count,
                lookups=entry.lookups,
            )
        )
    summaries.sort(key=lambda s: -s.best_score)
    return summaries[:count]


def attribute_set_distribution(prefetcher: ContextPrefetcher) -> Counter[AttributeSet]:
    """How many reducer entries use each active-attribute subset."""
    return Counter(entry.active for entry in prefetcher.reducer._entries.values())


def delta_distribution(prefetcher: ContextPrefetcher) -> Counter[int]:
    """Histogram of stored deltas across the whole CST."""
    counts: Counter[int] = Counter()
    for entry in prefetcher.cst._entries.values():
        for cand in entry.candidates:
            counts[cand.delta] += 1
    return counts


@dataclass(slots=True)
class StateReport:
    cst_occupancy: int
    cst_capacity: int
    reducer_occupancy: int
    reducer_capacity: int
    positive_candidates: int
    negative_candidates: int
    queue_hit_rate: float
    accuracy: float
    epsilon: float
    degree: int


def state_report(prefetcher: ContextPrefetcher) -> StateReport:
    """Aggregate health snapshot of a prefetcher's learned state."""
    positive = negative = 0
    for entry in prefetcher.cst._entries.values():
        for cand in entry.candidates:
            if cand.score > 0:
                positive += 1
            elif cand.score < 0:
                negative += 1
    return StateReport(
        cst_occupancy=prefetcher.cst.occupancy(),
        cst_capacity=prefetcher.config.cst_entries,
        reducer_occupancy=prefetcher.reducer.occupancy(),
        reducer_capacity=prefetcher.config.reducer_entries,
        positive_candidates=positive,
        negative_candidates=negative,
        queue_hit_rate=prefetcher.queue.hit_rate(),
        accuracy=prefetcher.policy.accuracy,
        epsilon=prefetcher.policy.epsilon(),
        degree=prefetcher.policy.degree(),
    )


def render_state(prefetcher: ContextPrefetcher, *, top: int = 8) -> str:
    """Human-readable dump of the learned state."""
    report = state_report(prefetcher)
    rows = [
        ("CST occupancy", f"{report.cst_occupancy}/{report.cst_capacity}"),
        ("reducer occupancy", f"{report.reducer_occupancy}/{report.reducer_capacity}"),
        ("candidates +/-", f"{report.positive_candidates}/{report.negative_candidates}"),
        ("queue hit rate", f"{report.queue_hit_rate:.2f}"),
        ("accuracy EMA", f"{report.accuracy:.2f}"),
        ("epsilon", f"{report.epsilon:.3f}"),
        ("degree", report.degree),
    ]
    state = render_table(("metric", "value"), rows, title="Prefetcher state")

    attr_rows = [
        (repr(attr_set), count)
        for attr_set, count in attribute_set_distribution(prefetcher).most_common(6)
    ]
    attrs = render_table(
        ("active attributes", "reducer entries"),
        attr_rows,
        title="Attribute selections",
    )

    ctx_rows = [
        (
            f"{s.index:#x}",
            " ".join(f"{d:+d}:{score}" for d, score in s.candidates),
            s.ptr_count,
            s.lookups,
        )
        for s in top_contexts(prefetcher, top)
    ]
    contexts = render_table(
        ("CST index", "delta:score", "refs", "lookups"),
        ctx_rows,
        title=f"Top {top} contexts by score",
    )
    return "\n\n".join((state, attrs, contexts))
