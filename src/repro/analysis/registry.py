"""Rule registry: rules register themselves at import time.

``@register_rule`` adds a rule class to the catalogue; ``all_rules``
instantiates the catalogue in deterministic (rule-id) order.  The rule
modules under :mod:`repro.analysis.rules` are imported lazily by
``all_rules`` so that importing the framework never costs a full rule
load, and so tests can instantiate individual rules directly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.findings import Finding
    from repro.analysis.visitor import Project


class Rule(abc.ABC):
    """Base class of every analysis rule.

    ``rule_id`` is the finding-code prefix (``DET``, ``BUD``, ...); a
    rule may emit several numbered codes under its prefix.
    """

    rule_id: str = ""
    title: str = ""

    @abc.abstractmethod
    def check(self, project: "Project") -> Iterator["Finding"]:
        """Yield findings for the given project."""


_RULES: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the catalogue."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    existing = _RULES.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULES[cls.rule_id] = cls
    return cls


def _load_rule_modules() -> None:
    # importing the package registers every built-in rule family
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Instantiate the full catalogue in rule-id order."""
    _load_rule_modules()
    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def rule_catalogue() -> dict[str, Type[Rule]]:
    """The registered rule classes by id (for ``lint --list-rules``)."""
    _load_rule_modules()
    return dict(sorted(_RULES.items()))
