"""Figure 14: data-layout-agnostic programming.

The paper runs SSCA2 (betweenness centrality) and Graph500 (BFS) in both
a naive linked-structure implementation and the spatially optimised
array/CSR implementation, under every prefetcher, reporting CPI.  The
finding: only the context prefetcher lets the naive linked code approach
the optimised code's performance; all spatio-temporal prefetchers
distinctly favour the optimised layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES
from repro.sim.config import PREFETCHER_ORDER
from repro.sim.runner import compare
from repro.workloads.bfs import Graph500CSRProgram, Graph500Program
from repro.workloads.ssca2 import SSCA2CSRProgram, SSCA2ListProgram


@dataclass
class Figure14Result:
    #: case study -> layout -> prefetcher -> CPI
    cpi: dict[str, dict[str, dict[str, float]]]

    def layout_gap(self, study: str, prefetcher: str) -> float:
        """CPI(linked) / CPI(array): 1.0 means layout no longer matters."""
        layouts = self.cpi[study]
        return layouts["linked"][prefetcher] / layouts["array"][prefetcher]


def run(scale: str = "small", prefetchers=PREFETCHER_ORDER) -> Figure14Result:
    limit = SCALES[scale]["limit"]
    studies = {
        "ssca2": {
            "linked": SSCA2ListProgram(),
            "array": SSCA2CSRProgram(),
        },
        "graph500": {
            "linked": Graph500Program(),
            "array": Graph500CSRProgram(),
        },
    }
    cpi: dict[str, dict[str, dict[str, float]]] = {}
    for study, layouts in studies.items():
        cpi[study] = {}
        for layout, program in layouts.items():
            comparison = compare([program], prefetchers, limit=limit)
            cpi[study][layout] = {
                pf: comparison.get(program.name, pf).cpi for pf in prefetchers
            }
    return Figure14Result(cpi=cpi)


def render(result: Figure14Result) -> str:
    prefetchers = list(next(iter(result.cpi.values()))["linked"])
    rows = []
    for study, layouts in result.cpi.items():
        for layout, by_pf in layouts.items():
            rows.append(
                (study, layout) + tuple(f"{by_pf[pf]:.2f}" for pf in prefetchers)
            )
    table = render_table(
        ("study", "layout") + tuple(prefetchers),
        rows,
        title="Figure 14 — CPI for naive (linked) vs optimised (array) layouts",
    )
    gap_rows = [
        (study, pf, f"{result.layout_gap(study, pf):.2f}")
        for study in result.cpi
        for pf in prefetchers
    ]
    gaps = render_table(
        ("study", "prefetcher", "CPI(linked)/CPI(array)"),
        gap_rows,
        title="layout penalty per prefetcher (1.00 = layout-agnostic)",
    )
    return table + "\n\n" + gaps


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
