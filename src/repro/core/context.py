"""Context capture and hashing (Section 4.4, Figure 7).

A *context* is the vector of attribute values present when a memory access
issues.  The attribute values are concatenated and hashed: the full hash
(over every attribute) indexes the Reducer, and a second hash over only the
*active* attributes indexes the Context-States Table.
"""

from __future__ import annotations

from repro.core.attributes import ALL_ATTRIBUTES, Attribute, AttributeSet
from repro.prefetchers.base import AccessInfo

_MASK64 = (1 << 64) - 1

# plain-int attribute positions: list indexing with an IntEnum member pays
# an __index__ call per store, and capture() stores all eight every access
_IP = int(Attribute.IP)
_TYPE_ID = int(Attribute.TYPE_ID)
_LINK_OFFSET = int(Attribute.LINK_OFFSET)
_REF_FORM = int(Attribute.REF_FORM)
_LAST_VALUE = int(Attribute.LAST_VALUE)
_BRANCH_HISTORY = int(Attribute.BRANCH_HISTORY)
_REG_VALUE = int(Attribute.REG_VALUE)
_ADDR_HISTORY = int(Attribute.ADDR_HISTORY)


def _mix(state: int, value: int) -> int:
    """One splitmix64-style mixing step; deterministic across runs."""
    state = (state + (value & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
    state ^= state >> 30
    state = (state * 0xBF58476D1CE4E5B9) & _MASK64
    state ^= state >> 27
    state = (state * 0x94D049BB133111EB) & _MASK64
    state ^= state >> 31
    return state


def context_hash(
    values: tuple[int, ...], active: AttributeSet, bits: int
) -> int:
    """Hash the active attribute values down to ``bits`` bits.

    Because the active set's bitmap is part of the key, the same values
    under a different attribute selection hash differently.  Built on
    Python's (deterministic for ints) tuple hash with one extra mixing
    step so the low bits used for table indexing are well distributed.
    """
    key = hash((active.bits,) + tuple(values[i] for i in active.indices))
    key = (key * 0x9E3779B97F4A7C15) & _MASK64
    key ^= key >> 29
    return key & ((1 << bits) - 1)


class ContextCapture:
    """A captured context: the raw attribute vector plus the access block.

    ``values`` is any indexable sequence of the eight attribute values.
    Tracker-produced captures share the tracker's reusable buffer, so they
    are valid only until the tracker's next capture — exactly the
    per-access lifetime the prefetcher needs.

    The pre-truncation hash key is memoized per active-set bitmap: the
    Reducer hashes every capture under the full set and again under the
    entry's active set (twice when adaptation runs), and the memo makes
    the repeats free without changing a single produced hash.
    """

    __slots__ = ("values", "block", "_keys")

    def __init__(
        self,
        values: "tuple[int, ...] | list[int]",
        block: int,
        _keys: dict[int, int] | None = None,
    ):
        self.values = values
        self.block = block
        self._keys = {} if _keys is None else _keys

    def hash(self, active: AttributeSet, bits: int) -> int:
        key = self._keys.get(active.bits)
        if key is None:
            values = self.values
            indices = active.indices
            if len(indices) == len(values):
                # full set: the gather would reproduce ``values`` verbatim
                # (indices are unique, sorted and in range), so splat it
                key = hash((active.bits, *values))
            else:
                key = hash((active.bits, *[values[i] for i in indices]))
            key = (key * 0x9E3779B97F4A7C15) & _MASK64
            key ^= key >> 29
            self._keys[active.bits] = key
        return key & ((1 << bits) - 1)


class ContextTracker:
    """Builds :class:`ContextCapture` records from the access stream.

    Maintains the prefetcher-internal pieces of Table 1 that are functions
    of the stream itself: the recent-address history.  Everything else is
    carried on the :class:`~repro.prefetchers.base.AccessInfo`.
    """

    __slots__ = (
        "block_bytes",
        "addr_history_depth",
        "_recent_blocks",
        "_values",
        "_keys",
        "_capture",
    )

    def __init__(self, *, block_bytes: int, addr_history_depth: int = 2):
        if addr_history_depth < 1:
            raise ValueError("address history needs at least one entry")
        self.block_bytes = block_bytes
        self.addr_history_depth = addr_history_depth
        self._recent_blocks: list[int] = []
        # reusable per-access buffers: the attribute vector, the hash memo
        # and the capture object itself are overwritten on every capture
        # instead of being reallocated (the capture's lifetime is one
        # access, documented on ContextCapture)
        self._values: list[int] = [0] * len(ALL_ATTRIBUTES)
        self._keys: dict[int, int] = {}
        self._capture = ContextCapture(self._values, 0, self._keys)

    def capture(self, access: AccessInfo) -> ContextCapture:
        """Capture the context of ``access`` *before* recording its address.

        The address-history attribute must reflect the accesses preceding
        this one; the current address becomes history only afterwards.
        The returned capture aliases the tracker's buffers and is
        invalidated by the next :meth:`capture` call.
        """
        recent = self._recent_blocks
        addr_hist = 0
        for block in recent:
            # inlined _mix (splitmix64 step) — the per-access loop runs it
            # addr_history_depth times and the call overhead dominates
            state = (addr_hist + (block & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
            state ^= state >> 30
            state = (state * 0xBF58476D1CE4E5B9) & _MASK64
            state ^= state >> 27
            state = (state * 0x94D049BB133111EB) & _MASK64
            addr_hist = state ^ (state >> 31)

        block = access.addr // self.block_bytes
        hints = access.hints
        values = self._values
        values[_IP] = access.pc
        values[_TYPE_ID] = hints.type_id
        values[_LINK_OFFSET] = hints.link_offset
        values[_REF_FORM] = int(hints.ref_form)
        values[_LAST_VALUE] = access.last_value
        values[_BRANCH_HISTORY] = access.branch_history
        values[_REG_VALUE] = access.reg_value
        values[_ADDR_HISTORY] = addr_hist

        recent.append(block)
        if len(recent) > self.addr_history_depth:
            recent.pop(0)

        self._keys.clear()
        capture = self._capture
        capture.block = block
        return capture

    def reset(self) -> None:
        self._recent_blocks.clear()
