"""Shared fixtures for the figure-regeneration benchmarks.

The sweep behind Figures 9–12 is expensive, so it runs once per session
(``bench_sweep``); the per-figure benchmarks then measure regenerating
each figure from it.  The sweep itself is benchmarked separately in
``test_bench_sweep.py``.
"""

import pytest

from repro.experiments.sweep import standard_sweep
from repro.workloads.suites import get_workload

#: the workload subset used by benchmark sweeps: one representative per
#: behaviour class, small enough for a minutes-scale benchmark session
BENCH_WORKLOADS = ("lbm", "mcf", "array", "list", "graph500-list", "graph500-csr")
BENCH_LIMIT = 20000


def bench_sweep_impl():
    workloads = [get_workload(name) for name in BENCH_WORKLOADS]
    from repro.sim.runner import compare

    return compare(workloads, limit=BENCH_LIMIT)


@pytest.fixture(scope="session")
def bench_sweep():
    return bench_sweep_impl()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
