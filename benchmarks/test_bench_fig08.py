"""Figure 8 bench: hit-depth CDFs for the context prefetcher."""

from conftest import run_once

from repro.experiments import fig08_hit_depth_cdf as fig08


def test_fig08_hit_depth_cdf(benchmark):
    workloads = ("list", "array", "bfs", "maptest")
    result = run_once(benchmark, fig08.run, "small", workloads)
    lo, hi = result.window

    # paper shape: the CDF steps up inside the reward window.  The strictly
    # regular μbenchmark (array) aligns almost perfectly; the irregular
    # ones keep a solid fraction inside the window with the early/late
    # tails the paper also reports (~25-40%)
    assert result.cdfs["array"].fraction_in_window(lo, hi) > 0.6
    for name in ("list", "bfs", "maptest"):
        cdf = result.cdfs[name]
        assert cdf.total > 0
        assert cdf.fraction_in_window(lo, hi) > 0.25, name
        assert cdf.fraction_late(lo) < 0.6, name
    print()
    print(fig08.render(result))
