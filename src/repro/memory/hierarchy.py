"""Two-level cache hierarchy with miss and prefetch timing.

Stands in for the gem5 memory system of Table 2: a private L1D, a shared
L2, and DRAM, each with a fixed access latency, plus per-level MSHR files.
Prefetches fill the L1 (and the L2 on the way), as in the paper.

The model is driven at demand-access granularity: callers present a
monotonically non-decreasing ``now`` (in cycles) and the hierarchy applies
any fills whose completion time has passed before serving the access.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.memory.address import LINE_BYTES
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MSHRFile
from repro.memory.stats import AccessClass, CacheStats


@dataclass
class HierarchyConfig:
    """Latency/geometry parameters (defaults reproduce Table 2)."""

    l1_size: int = 64 * 1024
    l1_ways: int = 8
    l1_latency: int = 2
    l1_mshrs: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_ways: int = 16
    l2_latency: int = 20
    l2_mshrs: int = 20
    dram_latency: int = 300
    #: minimum cycles between successive DRAM line transfers (bandwidth:
    #: one 64B line per interval; 4 cycles ≈ 16 GB/s at 1 GHz).  Bounds
    #: the otherwise-free benefit of spraying inaccurate prefetches.
    dram_service_interval: int = 4
    line_bytes: int = LINE_BYTES
    #: in-flight prefetches use their own response buffers (gem5-style),
    #: so prefetch traffic does not starve the small demand MSHR file
    prefetch_buffers: int = 16
    #: buffers kept free as a pressure signal: when availability drops to
    #: this level the context prefetcher converts requests to shadow ops
    prefetch_mshr_reserve: int = 1
    #: prefetches waiting for a free buffer (gem5-style prefetch queue)
    prefetch_backlog_depth: int = 32
    #: the paper prefetches into the L1 (Section 4.3); False fills only
    #: the L2, trading L1 hit conversion for zero L1 pollution (ablation)
    prefetch_fill_l1: bool = True

    def l1_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l1_size,
            ways=self.l1_ways,
            line_bytes=self.line_bytes,
            latency=self.l1_latency,
            name="L1D",
        )

    def l2_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l2_size,
            ways=self.l2_ways,
            line_bytes=self.line_bytes,
            latency=self.l2_latency,
            name="L2",
        )

    @property
    def l2_hit_latency(self) -> int:
        """Demand latency when the L1 misses but the L2 hits."""
        return self.l1_latency + self.l2_latency

    @property
    def dram_fill_latency(self) -> int:
        """Demand latency when both levels miss."""
        return self.l1_latency + self.l2_latency + self.dram_latency


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    served_by: str
    access_class: AccessClass
    line: int


@dataclass
class _PendingFill:
    completes_at: int
    line: int
    prefetched: bool
    fill_l2: bool

    def __lt__(self, other: "_PendingFill") -> bool:
        return self.completes_at < other.completes_at


@dataclass
class PrefetchOutcome:
    """Result of attempting a prefetch issue."""

    issued: bool
    reason: str = "issued"
    completes_at: int = 0


class Hierarchy:
    """L1D + shared L2 + DRAM with in-flight miss/prefetch tracking."""

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1 = Cache(self.config.l1_config())
        self.l2 = Cache(self.config.l2_config())
        self.l1_mshrs = MSHRFile(self.config.l1_mshrs)
        self.l2_mshrs = MSHRFile(self.config.l2_mshrs)
        self.pf_buffers = MSHRFile(self.config.prefetch_buffers)
        self.l1_stats = CacheStats(name="L1D")
        self.l2_stats = CacheStats(name="L2")
        self._pending: list[_PendingFill] = []
        self._backlog: deque[int] = deque()
        self._dram_next_free = 0
        self.dram_fetches = 0
        #: lines predicted recently but not issued to memory (for NON_TIMELY)
        self._predicted_not_issued: dict[int, int] = {}
        self._prediction_window = 256
        self._access_index = 0
        self.prefetches_issued = 0
        self.prefetches_rejected_mshr = 0
        self.prefetches_redundant = 0

    # ------------------------------------------------------------------
    # fills

    def _apply_fills(self, now: int) -> None:
        while self._pending and self._pending[0].completes_at <= now:
            fill = heapq.heappop(self._pending)
            if fill.fill_l2:
                self.l2.fill(fill.line, prefetched=fill.prefetched, now=fill.completes_at)
            if not fill.prefetched or self.config.prefetch_fill_l1:
                self.l1.fill(fill.line, prefetched=fill.prefetched, now=fill.completes_at)
        self._drain_backlog(now)

    def _drain_backlog(self, now: int) -> None:
        """Issue queued prefetches as buffers free up."""
        while self._backlog and self.pf_buffers.available(now) > 0:
            line = self._backlog[0]
            if (
                self.l1.contains(line)
                or self.pf_buffers.lookup(line, now) is not None
                or self.l1_mshrs.lookup(line, now) is not None
            ):
                self._backlog.popleft()
                continue
            if self._try_issue_prefetch(line, now) is None:
                break  # L2 MSHRs exhausted; retry at the next event
            self._backlog.popleft()

    def _try_issue_prefetch(self, line: int, now: int) -> PrefetchOutcome | None:
        """Issue a prefetch if buffer/MSHR resources allow; else None."""
        cfg = self.config
        if self.pf_buffers.available(now) <= 0:
            return None
        if self.l2.contains(line):
            if not cfg.prefetch_fill_l1:
                # L2-only mode: an L2-resident line needs no prefetch
                self.prefetches_redundant += 1
                return PrefetchOutcome(issued=False, reason="resident-l2")
            self.l2.lookup(line)
            completes_at = now + cfg.l2_hit_latency
            fill_l2 = False
        else:
            if self.l2_mshrs.available(now) <= 0:
                return None
            completes_at = self._dram_completion(now, cfg.dram_fill_latency)
            fill_l2 = True
            self.l2_mshrs.allocate(line, now, completes_at, is_prefetch=True)
        self.pf_buffers.allocate(line, now, completes_at, is_prefetch=True)
        self._schedule_fill(line, completes_at, prefetched=True, fill_l2=fill_l2)
        self.prefetches_issued += 1
        return PrefetchOutcome(issued=True, completes_at=completes_at)

    def _schedule_fill(
        self, line: int, completes_at: int, *, prefetched: bool, fill_l2: bool
    ) -> None:
        heapq.heappush(
            self._pending,
            _PendingFill(
                completes_at=completes_at,
                line=line,
                prefetched=prefetched,
                fill_l2=fill_l2,
            ),
        )

    # ------------------------------------------------------------------
    # prediction bookkeeping (for Figure 9's NON_TIMELY class)

    def _dram_completion(self, now: int, base_latency: int) -> int:
        """Completion time of a DRAM line fetch issued at ``now``.

        DRAM serves one line per ``dram_service_interval`` cycles; a fetch
        arriving while the channel is busy queues behind earlier ones.
        """
        start = max(now, self._dram_next_free)
        self._dram_next_free = start + self.config.dram_service_interval
        self.dram_fetches += 1
        return start + base_latency

    def note_unissued_prediction(self, line: int) -> None:
        """Record that a prefetcher predicted ``line`` without a memory request."""
        self._predicted_not_issued[line] = self._access_index
        if len(self._predicted_not_issued) > 4 * self._prediction_window:
            cutoff = self._access_index - self._prediction_window
            self._predicted_not_issued = {
                ln: idx
                for ln, idx in self._predicted_not_issued.items()
                if idx >= cutoff
            }

    def _was_predicted_recently(self, line: int) -> bool:
        idx = self._predicted_not_issued.get(line)
        return idx is not None and self._access_index - idx <= self._prediction_window

    # ------------------------------------------------------------------
    # demand path

    def demand_access(self, addr: int, now: int) -> AccessResult:
        """Serve a demand load/store of ``addr`` issued at cycle ``now``."""
        self._apply_fills(now)
        self._access_index += 1
        line = addr // self.config.line_bytes
        cfg = self.config

        l1_entry = self.l1.peek(line)
        if l1_entry is not None:
            was_prefetched = l1_entry.prefetched and not l1_entry.referenced
            self.l1.lookup(line)
            self.l1_stats.record(hit=True)
            access_class = (
                AccessClass.HIT_PREFETCHED
                if was_prefetched
                else AccessClass.HIT_OLDER_DEMAND
            )
            return AccessResult(
                latency=cfg.l1_latency,
                l1_hit=True,
                l2_hit=False,
                served_by="l1",
                access_class=access_class,
                line=line,
            )

        self.l1_stats.record(hit=False)

        # In-flight prefetch: the demand merges and waits only for the
        # remainder of the fetch — the paper's "shorter wait time" class.
        pf_inflight = self.pf_buffers.lookup(line, now)
        if pf_inflight is not None:
            latency = max(cfg.l1_latency, pf_inflight - now)
            # an MSHR hit, not a new L2 demand miss: no L2 stats event
            return AccessResult(
                latency=latency,
                l1_hit=False,
                l2_hit=self.l2.contains(line),
                served_by="mshr",
                access_class=AccessClass.SHORTER_WAIT,
                line=line,
            )

        # In-flight demand miss: merge. The data was already on its way
        # for program reasons, not prefetching.
        inflight = self.l1_mshrs.lookup(line, now)
        if inflight is not None:
            self.l1_mshrs.allocate(line, now, inflight, is_prefetch=False)
            latency = max(cfg.l1_latency, inflight - now)
            # secondary miss: the primary already counted the L2 event
            return AccessResult(
                latency=latency,
                l1_hit=False,
                l2_hit=self.l2.contains(line),
                served_by="mshr",
                access_class=AccessClass.HIT_OLDER_DEMAND,
                line=line,
            )

        l2_entry = self.l2.lookup(line)
        l2_hit = l2_entry is not None
        self.l2_stats.record(hit=l2_hit)

        # Demand misses always make progress: if the MSHR file is full the
        # access waits for the earliest completion before starting.
        issue_at = now
        if self.l1_mshrs.available(now) == 0:
            lines = self.l1_mshrs.in_flight_lines(now)
            earliest = min(self.l1_mshrs.lookup(ln, now) for ln in lines)
            issue_at = max(now, earliest)

        if l2_hit:
            completes_at = issue_at + cfg.l2_hit_latency
            served_by = "l2"
        else:
            # Reserve the DRAM channel slot at the time the request is
            # first seen (it queues in the controller while waiting for an
            # MSHR); the MSHR wait is applied as a separate floor.  Using
            # ``issue_at`` here would reserve a slot in the future and
            # spuriously serialise every later fetch behind it.
            completes_at = max(
                self._dram_completion(now, cfg.dram_fill_latency),
                issue_at + cfg.dram_fill_latency,
            )
            served_by = "dram"
        latency = completes_at - now

        self.l1_mshrs.allocate(line, issue_at, completes_at, is_prefetch=False)
        if not l2_hit:
            self.l2_mshrs.allocate(line, issue_at, completes_at, is_prefetch=False)
        self._schedule_fill(line, completes_at, prefetched=False, fill_l2=not l2_hit)

        if self._was_predicted_recently(line):
            access_class = AccessClass.NON_TIMELY
        else:
            access_class = AccessClass.MISS_NOT_PREFETCHED
        return AccessResult(
            latency=latency,
            l1_hit=False,
            l2_hit=l2_hit,
            served_by=served_by,
            access_class=access_class,
            line=line,
        )

    # ------------------------------------------------------------------
    # prefetch path

    def prefetch(
        self, addr: int, now: int, *, mshr_reserve: int | None = None
    ) -> PrefetchOutcome:
        """Issue a prefetch of ``addr`` into the L1 at cycle ``now``.

        The configured MSHR reserve is kept free for demand misses; a
        prefetch that cannot get an MSHR queues in a bounded backlog and
        issues as MSHRs free (the gem5 prefetch queue).  Only when the
        backlog itself is full is the request rejected, at which point the
        context prefetcher converts it to a shadow operation (Section 4.2).
        """
        self._apply_fills(now)
        line = addr // self.config.line_bytes
        reserve = (
            self.config.prefetch_mshr_reserve if mshr_reserve is None else mshr_reserve
        )

        if self.l1.contains(line):
            self.prefetches_redundant += 1
            return PrefetchOutcome(issued=False, reason="resident")
        if (
            self.pf_buffers.lookup(line, now) is not None
            or self.l1_mshrs.lookup(line, now) is not None
        ):
            self.prefetches_redundant += 1
            return PrefetchOutcome(issued=False, reason="in-flight")
        if line in self._backlog:
            self.prefetches_redundant += 1
            return PrefetchOutcome(issued=False, reason="queued-already")

        if self.pf_buffers.available(now) > reserve:
            outcome = self._try_issue_prefetch(line, now)
            if outcome is not None:
                return outcome
        if len(self._backlog) < self.config.prefetch_backlog_depth:
            self._backlog.append(line)
            # A queued prefetch may still lose the race with the demand
            # access; record it for the NON_TIMELY classification.
            self.note_unissued_prediction(line)
            return PrefetchOutcome(issued=True, reason="queued")
        self.prefetches_rejected_mshr += 1
        return PrefetchOutcome(issued=False, reason="mshr-pressure")

    # ------------------------------------------------------------------
    # accounting

    def wasted_prefetches(self) -> int:
        """Prefetched lines evicted from the L1 without ever being referenced."""
        return self.l1.unused_prefetch_evictions

    def drain(self, now: int) -> None:
        """Apply every outstanding fill up to ``now`` (end-of-run helper)."""
        self._apply_fills(now)
