"""Tables 1–3 of the paper: attributes, system parameters, workloads."""

from __future__ import annotations

from repro.core.attributes import ALL_ATTRIBUTES, Attribute, DEFAULT_ACTIVE
from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.experiments.report import render_table
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.config import PREFETCHER_FACTORIES
from repro.workloads.suites import SUITES

_ATTRIBUTE_SOURCES = {
    Attribute.IP: "Hardware",
    Attribute.ADDR_HISTORY: "Hardware",
    Attribute.BRANCH_HISTORY: "Hardware",
    Attribute.REG_VALUE: "Hardware",
    Attribute.LAST_VALUE: "Hardware",
    Attribute.TYPE_ID: "Compiler",
    Attribute.LINK_OFFSET: "Compiler",
    Attribute.REF_FORM: "Compiler",
}


def table1() -> str:
    """Table 1 — the contextual hints and their sources."""
    rows = [
        (
            attr.name,
            _ATTRIBUTE_SOURCES[attr],
            "yes" if attr in DEFAULT_ACTIVE else "on overload",
        )
        for attr in ALL_ATTRIBUTES
    ]
    return render_table(
        ("attribute", "source", "active initially"),
        rows,
        title="Table 1 — context attributes",
    )


def table2() -> str:
    """Table 2 — simulator and prefetcher parameters, with storage audit."""
    hier = HierarchyConfig()
    core = CoreConfig()
    ctx = ContextPrefetcherConfig()
    rows = [
        ("core", f"OoO, {core.issue_width}-wide fetch"),
        ("queues", f"{core.rob_size} ROB, {core.lq_size} LQ/SQ"),
        ("MSHRs", f"L1: {hier.l1_mshrs}, L2: {hier.l2_mshrs}"),
        (
            "L1 cache",
            f"{hier.l1_size // 1024}kB, {hier.l1_ways} ways, "
            f"{hier.l1_latency} cycles",
        ),
        (
            "L2 cache",
            f"{hier.l2_size // 1024 // 1024}MB, {hier.l2_ways} ways, "
            f"{hier.l2_latency} cycles",
        ),
        ("main memory", f"{hier.dram_latency} cycles"),
        ("CST", f"{ctx.cst_entries} entries x {ctx.cst_links} links"),
        ("reducer", f"{ctx.reducer_entries} entries"),
        ("history queue", f"{ctx.history_entries} entries"),
        ("prefetch queue", f"{ctx.prefetch_queue_entries} entries"),
        ("context pf storage", f"{ctx.storage_bits() / 8 / 1024:.1f} KiB"),
    ]
    for name, factory in PREFETCHER_FACTORIES.items():
        if name in ("none", "context"):
            continue
        rows.append((f"{name} storage", f"{factory().storage_kib():.1f} KiB"))
    return render_table(
        ("parameter", "value"), rows, title="Table 2 — system configuration"
    )


def table3() -> str:
    """Table 3 — the workload registry by suite."""
    rows = [(suite, ", ".join(names)) for suite, names in SUITES.items()]
    return render_table(
        ("suite", "workloads"), rows, title="Table 3 — workloads and benchmarks"
    )


def main() -> None:
    print(table1())
    print()
    print(table2())
    print()
    print(table3())


if __name__ == "__main__":
    main()
