"""Decode phase: access streams to contiguous numpy columns.

The native kernel consumes four per-access columns — byte address,
program counter, instruction gap and the flags byte — plus the derived
cache-line column.  Two sources feed it:

* a :class:`~repro.workloads.store.TraceReader`, whose record block
  reinterprets as a numpy struct array with **zero copies** from the
  mmap (:meth:`TraceReader.as_array`); the columns below are contiguous
  copies of single fields, one vectorized pass each;
* an in-memory access list (a built workload), converted column-at-a-time
  with ``numpy.fromiter`` — still one C-level pass per column, no
  per-record Python tuples.

Both paths return ``None`` (after logging) instead of raising when the
stream cannot be represented: addresses outside the modelled 48-bit
space, gaps beyond ``u32``, PCs beyond ``u64``.  Callers fall back to
the interpreted scalar path.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.memory.address import ADDRESS_MASK, lines_of_array, max_address

log = logging.getLogger(__name__)

_U32_MAX = (1 << 32) - 1

#: flags-byte bit the kernel consumes (store layout bit1 = depends_on_prev)
FLAG_DEPENDS = 2


@dataclass
class Columns:
    """The decoded per-access columns one native run consumes."""

    n: int
    addrs: object  # u64[n], C-contiguous
    pcs: object  # u64[n], C-contiguous
    lines: object  # u64[n], C-contiguous
    inst_gaps: object  # u32[n], C-contiguous
    flags: object  # u8[n], C-contiguous


def _check_addresses(addrs) -> bool:
    """True when every address fits the modelled 48-bit space.

    The kernel's delta arithmetic (stride/GHB/Markov) runs in signed
    64-bit integers; :data:`ADDRESS_MASK` keeps every difference exact.
    """
    top = max_address(addrs)
    if top > ADDRESS_MASK:
        log.warning(
            "native decode: address %#x exceeds the modelled %d-bit space; "
            "falling back to the interpreted path",
            top,
            ADDRESS_MASK.bit_length(),
        )
        return False
    return True


def columns_from_reader(reader, limit: int | None, line_bytes: int) -> Columns | None:
    """Columns for a store-backed trace (zero-copy struct-array source).

    Returns ``None`` (logged) when numpy is unavailable or the stream
    falls outside the kernel's value ranges.
    """
    from repro.workloads.store import TraceStoreError

    try:
        import numpy as np
    except ImportError as exc:
        log.warning("native decode: numpy unavailable (%s)", exc)
        return None
    try:
        records = reader.as_array(limit)
    except TraceStoreError as exc:
        log.warning("native decode: array view failed (%s)", exc)
        return None
    addrs = np.ascontiguousarray(records["addr"], dtype="=u8")
    if not _check_addresses(addrs):
        return None
    return Columns(
        n=len(addrs),
        addrs=addrs,
        pcs=np.ascontiguousarray(records["pc"], dtype="=u8"),
        lines=np.ascontiguousarray(lines_of_array(addrs, line_bytes), dtype="=u8"),
        inst_gaps=np.ascontiguousarray(records["inst_gap"], dtype="=u4"),
        flags=np.ascontiguousarray(records["flags"], dtype="=u1"),
    )


def columns_from_accesses(accesses, line_bytes: int) -> Columns | None:
    """Columns for an in-memory access list (built workloads).

    Only the ``depends_on_prev`` flag bit is populated — the kernel reads
    nothing else from the flags byte.  Returns ``None`` (logged) when
    numpy is unavailable or a field falls outside the column dtypes.
    """
    try:
        import numpy as np
    except ImportError as exc:
        log.warning("native decode: numpy unavailable (%s)", exc)
        return None
    n = len(accesses)
    try:
        addrs = np.fromiter((a.addr for a in accesses), dtype="=u8", count=n)
        pcs = np.fromiter((a.pc for a in accesses), dtype="=u8", count=n)
        inst_gaps = np.fromiter((a.inst_gap for a in accesses), dtype="=u4", count=n)
        flags = np.fromiter(
            (FLAG_DEPENDS if a.depends_on_prev else 0 for a in accesses),
            dtype="=u1",
            count=n,
        )
    except (OverflowError, ValueError) as exc:
        log.warning(
            "native decode: access stream outside the kernel's value ranges "
            "(%s); falling back to the interpreted path",
            exc,
        )
        return None
    if not _check_addresses(addrs):
        return None
    if n and int(inst_gaps.max()) > _U32_MAX:  # unreachable with =u4; belt
        log.warning("native decode: instruction gap exceeds u32")
        return None
    return Columns(
        n=n,
        addrs=addrs,
        pcs=pcs,
        lines=np.ascontiguousarray(lines_of_array(addrs, line_bytes), dtype="=u8"),
        inst_gaps=inst_gaps,
        flags=flags,
    )
