"""Graph substrates: linked adjacency lists and CSR, plus generators.

Figure 3 of the paper shows the same BFS implemented over a linked graph
and over a compressed-sparse-row (CSR) layout; Figure 14 measures both.
The two classes here expose the same logical graph through the two
physical layouts, so the workload programs can emit layout-faithful
access streams for either.

The edge generator is the Graph500 RMAT recursive-matrix sampler
(A=0.57, B=0.19, C=0.19 as in the reference implementation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.trace import Heap

VERTEX_BYTES = 32  # visited @0, value @8, edge-list head @16
EDGE_BYTES = 32  # target vertex ptr @0, weight @8, next edge @16
VISITED_OFFSET = 0
VALUE_OFFSET = 8
EDGES_OFFSET = 16
EDGE_TARGET_OFFSET = 0
EDGE_WEIGHT_OFFSET = 8
EDGE_NEXT_OFFSET = 16
WORD_BYTES = 8


def rmat_edges(
    scale: int,
    edge_factor: int = 8,
    seed: int = 42,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> list[tuple[int, int]]:
    """Sample a Graph500-style RMAT edge list: 2^scale vertices."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random(seed)
    n = 1 << scale
    edges = []
    for _ in range(n * edge_factor):
        u = v = 0
        half = n >> 1
        while half >= 1:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        if u != v:
            edges.append((u, v))
    return edges


def random_edges(
    num_vertices: int, num_edges: int, seed: int = 42
) -> list[tuple[int, int]]:
    """Uniform random (Erdős–Rényi-style) edge list without self loops."""
    rng = random.Random(seed)
    edges = []
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.append((u, v))
    return edges


def grid_edges(side: int) -> list[tuple[int, int]]:
    """4-connected grid graph (deterministic, high-diameter)."""
    edges = []
    for y in range(side):
        for x in range(side):
            v = y * side + x
            if x + 1 < side:
                edges.append((v, v + 1))
            if y + 1 < side:
                edges.append((v, v + side))
    return edges


# ----------------------------------------------------------------------


@dataclass
class LinkedVertex:
    addr: int
    vid: int
    edges: "LinkedEdge | None" = None
    degree: int = 0


@dataclass
class LinkedEdge:
    addr: int
    target: LinkedVertex
    weight: int
    next: "LinkedEdge | None" = None


class LinkedGraph:
    """The naive pointer-based layout: vertex and edge objects on a heap.

    ``grouping`` selects the construction order a naive program would use:

    * ``"sorted"`` (default) — the loader reads the edge list, groups it
      by source vertex, and builds each adjacency list in turn, so a
      vertex's edge objects are allocated right after the vertex itself
      (near it on the heap, though still shuffled within allocator
      windows).  This is what `sort | build` loader code produces.
    * ``"arrival"`` — vertices up front, edge objects in stream-arrival
      order, so the edges of one vertex scatter through the whole edge
      arena (the most hostile layout).
    """

    def __init__(
        self,
        num_vertices: int,
        edges: list[tuple[int, int]],
        heap: Heap,
        *,
        weight_seed: int = 5,
        grouping: str = "sorted",
    ):
        if grouping not in ("sorted", "arrival"):
            raise ValueError(f"unknown grouping {grouping!r}")
        rng = random.Random(weight_seed)
        self.heap = heap
        self.num_edges = 0
        if grouping == "arrival":
            self.vertices = [
                LinkedVertex(addr=heap.alloc(VERTEX_BYTES), vid=i)
                for i in range(num_vertices)
            ]
            for u, v in edges:
                self.add_edge(u, v, weight=rng.randrange(1, 100))
            return

        # sorted/grouped construction: each vertex object is allocated and
        # immediately followed by its edge objects, interleaved.  Target
        # vertex objects may receive their addresses later in the loop;
        # the Python object graph is complete up front, only heap
        # placement happens here.
        by_source: list[list[int]] = [[] for _ in range(num_vertices)]
        for u, v in edges:
            by_source[u].append(v)
        self.vertices = [LinkedVertex(addr=0, vid=i) for i in range(num_vertices)]
        for vid in range(num_vertices):
            vertex = self.vertices[vid]
            vertex.addr = heap.alloc(VERTEX_BYTES)
            # add_edge links LIFO, so allocate in reverse to make the
            # traversal order match the allocation (address) order
            for target in reversed(by_source[vid]):
                self.add_edge(vid, target, weight=rng.randrange(1, 100))

    def add_edge(self, u: int, v: int, *, weight: int = 1) -> LinkedEdge:
        src = self.vertices[u]
        edge = LinkedEdge(
            addr=self.heap.alloc(EDGE_BYTES),
            target=self.vertices[v],
            weight=weight,
            next=src.edges,
        )
        src.edges = edge
        src.degree += 1
        self.num_edges += 1
        return edge

    def neighbors(self, u: int) -> list[int]:
        out = []
        edge = self.vertices[u].edges
        while edge is not None:
            out.append(edge.target.vid)
            edge = edge.next
        return out

    def __len__(self) -> int:
        return len(self.vertices)


class CSRGraph:
    """The spatially optimised layout: compressed sparse row arrays."""

    def __init__(
        self,
        num_vertices: int,
        edges: list[tuple[int, int]],
        heap: Heap,
        *,
        weight_seed: int = 5,
    ):
        rng = random.Random(weight_seed)
        self.num_vertices = num_vertices
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_vertices)]
        for u, v in edges:
            adjacency[u].append((v, rng.randrange(1, 100)))

        self.row_offsets = [0]
        self.col_indices: list[int] = []
        self.weights: list[int] = []
        for adj in adjacency:
            for v, w in adj:
                self.col_indices.append(v)
                self.weights.append(w)
            self.row_offsets.append(len(self.col_indices))
        self.num_edges = len(self.col_indices)

        self.row_base = heap.alloc(len(self.row_offsets) * WORD_BYTES)
        self.col_base = heap.alloc(max(1, self.num_edges) * WORD_BYTES)
        self.weight_base = heap.alloc(max(1, self.num_edges) * WORD_BYTES)
        self.visited_base = heap.alloc(num_vertices * WORD_BYTES)
        self.aux_base = heap.alloc(num_vertices * WORD_BYTES)

    # -- address helpers -------------------------------------------------

    def row_addr(self, v: int) -> int:
        return self.row_base + v * WORD_BYTES

    def col_addr(self, i: int) -> int:
        return self.col_base + i * WORD_BYTES

    def weight_addr(self, i: int) -> int:
        return self.weight_base + i * WORD_BYTES

    def visited_addr(self, v: int) -> int:
        return self.visited_base + v * WORD_BYTES

    def aux_addr(self, v: int) -> int:
        return self.aux_base + v * WORD_BYTES

    def neighbors(self, u: int) -> list[int]:
        lo, hi = self.row_offsets[u], self.row_offsets[u + 1]
        return self.col_indices[lo:hi]

    def __len__(self) -> int:
        return self.num_vertices


def bfs_order(neighbors, num_vertices: int, root: int) -> list[int]:
    """Reference BFS visit order (substrate-level, for validation)."""
    seen = [False] * num_vertices
    seen[root] = True
    order = [root]
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    order.append(v)
                    nxt.append(v)
        frontier = nxt
    return order
