"""Workload characterization table (the Section 6 phase-selection view).

Renders Table-3-style characterization for every registered workload:
memory intensity, footprint, pointer-chase fraction, hint coverage and
the dominant stride — the quantities that determine which prefetcher
family can possibly serve each workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.workloads.characterize import WorkloadProfile, characterize
from repro.workloads.suites import all_workloads, get_workload


@dataclass
class CharacterizationResult:
    #: workload -> profile
    profiles: dict[str, WorkloadProfile]

    def irregular_workloads(self, *, threshold: float = 0.3) -> list[str]:
        """Workloads dominated by dependent (pointer-chase) accesses."""
        return [
            name
            for name, profile in self.profiles.items()
            if profile.dependent_fraction > threshold
        ]


def run(
    workloads: tuple[str, ...] | None = None, *, limit: int = 20000
) -> CharacterizationResult:
    if workloads is None:
        specs = all_workloads()
    else:
        specs = [get_workload(name) for name in workloads]
    profiles = {
        spec.name: characterize(spec.build().trace()[:limit]) for spec in specs
    }
    return CharacterizationResult(profiles=profiles)


def render(result: CharacterizationResult) -> str:
    rows = []
    for name, p in result.profiles.items():
        stride = p.dominant_stride()
        rows.append(
            (
                name,
                f"{p.memory_intensity:.2f}",
                f"{p.footprint_bytes // 1024}K",
                f"{p.dependent_fraction:.0%}",
                f"{p.hinted_fraction:.0%}",
                f"{p.branch_rate:.2f}",
                stride if stride is not None else "-",
                f"{p.reuse_p50:.0f}/{p.reuse_p90:.0f}",
            )
        )
    return render_table(
        (
            "workload",
            "mem/inst",
            "footprint",
            "dependent",
            "hinted",
            "br/access",
            "stride",
            "reuse p50/p90",
        ),
        rows,
        title="Workload characterization (Section 6 methodology)",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
