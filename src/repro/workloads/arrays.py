"""Array μbenchmarks: the regular, spatially friendly end of the spectrum.

The paper's ``array`` μkernel shows that the context-based prefetcher also
captures strictly regular patterns ("the prefetcher indeed captures access
semantics rather than focusing on a specific access pattern", Section 7.1).
"""

from __future__ import annotations

import random

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram


class ArrayTraversalProgram(TraceProgram):
    """The ``array`` μkernel: repeated sequential sweeps over an array."""

    name = "array"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_elements: int = 16384,
        element_bytes: int = 8,
        iterations: int = 4,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_elements = num_elements
        self.element_bytes = element_bytes
        self.iterations = iterations

    def build(self) -> TraceBuilder:
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        base = heap.alloc(self.num_elements * self.element_bytes)
        hints = tb.index_hints("array_elem")
        for _ in range(self.iterations):
            for i in range(self.num_elements):
                tb.load(
                    base + i * self.element_bytes,
                    "array.sum",
                    value=i,
                    hints=hints,
                    gap=2,
                )
                tb.branch(i + 1 < self.num_elements)
        return tb


class StridedSweepProgram(TraceProgram):
    """Strided array access (unit test bed for stride/GHB prefetchers)."""

    name = "strided"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_elements: int = 8192,
        stride_elements: int = 16,
        element_bytes: int = 8,
        iterations: int = 8,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_elements = num_elements
        self.stride_elements = stride_elements
        self.element_bytes = element_bytes
        self.iterations = iterations

    def build(self) -> TraceBuilder:
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        base = heap.alloc(self.num_elements * self.element_bytes)
        for _ in range(self.iterations):
            for i in range(0, self.num_elements, self.stride_elements):
                tb.load(base + i * self.element_bytes, "stride.load", gap=3)
        return tb


class RandomAccessProgram(TraceProgram):
    """Uniformly random accesses over a large array (unpredictable floor).

    No prefetcher can predict *which* line comes next, so per-access
    accuracy must stay near chance (the learning tests rely on this).
    Aggressive prefetchers can still gain IPC legitimately by *staging*:
    the working set recurs, so even inaccurate prefetches pull its lines
    from DRAM into the large L2, converting later misses into L2 hits —
    spending bandwidth to buy latency, which the DRAM service model
    charges for.
    """

    name = "random"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_elements: int = 1 << 16,
        element_bytes: int = 8,
        accesses: int = 20000,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_elements = num_elements
        self.element_bytes = element_bytes
        self.accesses = accesses

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        base = heap.alloc(self.num_elements * self.element_bytes)
        for _ in range(self.accesses):
            i = rng.randrange(self.num_elements)
            tb.load(base + i * self.element_bytes, "rand.load", gap=4)
        return tb
