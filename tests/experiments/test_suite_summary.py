"""Tests for the per-suite summary view."""

import pytest

from repro.experiments import suite_summary
from repro.sim.runner import compare
from repro.workloads.suites import get_workload


@pytest.fixture(scope="module")
def summary():
    workloads = [get_workload(n) for n in ("list", "array", "lbm", "mcf")]
    comparison = compare(workloads, prefetchers=("none", "sms", "context"), limit=4000)
    return suite_summary.run(comparison=comparison)


class TestGrouping:
    def test_suites_discovered(self, summary):
        assert set(summary.by_suite) == {"ukernel-ds", "spec2006"}

    def test_prefetchers_exclude_baseline(self, summary):
        assert set(summary.by_suite["spec2006"]) == {"sms", "context"}

    def test_peak_at_least_geomean(self, summary):
        for suite in summary.by_suite:
            for pf, mean in summary.by_suite[suite].items():
                assert summary.peaks[suite][pf] >= mean - 1e-9

    def test_best_prefetcher_accessor(self, summary):
        suite = "ukernel-ds"
        best = summary.best_prefetcher(suite)
        row = summary.by_suite[suite]
        assert row[best] == max(row.values())

    def test_render(self, summary):
        text = suite_summary.render(summary)
        assert "Per-suite" in text
        assert "geomean" in text and "peak" in text
