"""Built-in rule families; importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import (
    budget,
    contracts,
    determinism,
    experiments,
    perf,
)

__all__ = ["budget", "contracts", "determinism", "experiments", "perf"]
