"""Cache-key suite: hits, misses, and graceful degradation.

The cache key must change whenever any input that could alter simulated
behaviour changes — trace, prefetcher, config field, limit, simulator
code version — and must NOT change otherwise, so re-running a figure
after an unrelated edit stays a cache hit.  Corrupt or missing cache
state must degrade to a cold start, never to an error or a wrong
result.
"""

import dataclasses
import json

from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.cache import (
    CellKeyer,
    SweepCache,
    cell_key,
    code_fingerprint,
    resolve_cache,
    trace_fingerprint,
)
from repro.sim.runner import compare, run_workload
from repro.workloads.trace import MemoryAccess

TRACE = [MemoryAccess(addr=0x1000 + 64 * i, pc=0x400000 + i % 3) for i in range(32)]


def key(**overrides) -> str:
    base = dict(
        workload="wl",
        trace_fp=trace_fingerprint(TRACE),
        prefetcher="context",
        limit=1000,
        code_version="v0",
    )
    base.update(overrides)
    return cell_key(**base)


class TestCellKey:
    def test_identical_inputs_hit(self):
        assert key() == key()

    def test_default_configs_key_like_explicit_defaults(self):
        assert key() == key(
            hierarchy_config=HierarchyConfig(),
            core_config=CoreConfig(),
            context_config=ContextPrefetcherConfig(),
        )

    def test_limit_changes_key(self):
        assert key() != key(limit=2000)
        assert key() != key(limit=None)

    def test_trace_fingerprint_changes_key(self):
        other = [*TRACE, MemoryAccess(addr=0x9000, pc=0x400009)]
        assert key() != key(trace_fp=trace_fingerprint(other))

    def test_workload_and_prefetcher_change_key(self):
        assert key() != key(workload="other")
        assert key() != key(prefetcher="stride")

    def test_hierarchy_field_changes_key(self):
        assert key() != key(hierarchy_config=HierarchyConfig(l1_size=32 * 1024))

    def test_core_field_changes_key(self):
        assert key() != key(core_config=CoreConfig(rob_size=256))

    def test_context_field_changes_key_for_context_cells(self):
        assert key() != key(context_config=ContextPrefetcherConfig(cst_entries=4096))

    def test_context_config_ignored_for_other_prefetchers(self):
        # stride cells don't consult the context config; varying it must
        # not evict their cached results
        scaled = ContextPrefetcherConfig(cst_entries=4096)
        assert key(prefetcher="stride") == key(
            prefetcher="stride", context_config=scaled
        )

    def test_code_version_changes_key(self):
        assert key() != key(code_version="v1")

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64  # sha256 hex


class TestCellKeyer:
    """The batched builder must equal cell_key byte-for-byte everywhere."""

    def assert_matches(self, **overrides):
        base = dict(
            workload="wl",
            trace_fp=trace_fingerprint(TRACE),
            prefetcher="context",
            limit=1000,
            hierarchy_config=None,
            core_config=None,
            context_config=None,
            code_version="v0",
        )
        base.update(overrides)
        keyer = CellKeyer(
            limit=base["limit"],
            hierarchy_config=base["hierarchy_config"],
            core_config=base["core_config"],
            code_version=base["code_version"],
        )
        built = keyer.key(
            workload=base["workload"],
            trace_fp=base["trace_fp"],
            prefetcher=base["prefetcher"],
            context_fragment=keyer.context_fragment(base["context_config"]),
        )
        assert built == cell_key(**base)

    def test_defaults(self):
        self.assert_matches()

    def test_every_varying_axis(self):
        self.assert_matches(workload="other", prefetcher="stride")
        self.assert_matches(prefetcher="none")
        self.assert_matches(limit=None)
        self.assert_matches(
            context_config=ContextPrefetcherConfig(cst_entries=4096)
        )
        self.assert_matches(
            hierarchy_config=HierarchyConfig(l1_size=32 * 1024),
            core_config=CoreConfig(rob_size=256),
        )

    def test_live_code_fingerprint(self):
        self.assert_matches(code_version=None)

    def test_non_context_cells_ignore_fragment(self):
        keyer = CellKeyer(limit=10, code_version="v0")
        scaled = keyer.context_fragment(ContextPrefetcherConfig(cst_entries=4096))
        common = dict(workload="wl", trace_fp="fp", prefetcher="stride")
        assert keyer.key(**common, context_fragment=scaled) == keyer.key(**common)


class TestTraceFingerprint:
    def test_stable(self):
        assert trace_fingerprint(TRACE) == trace_fingerprint(list(TRACE))

    def test_order_sensitive(self):
        assert trace_fingerprint(TRACE) != trace_fingerprint(TRACE[::-1])

    def test_field_sensitive(self):
        changed = [dataclasses.replace(TRACE[0], is_load=False), *TRACE[1:]]
        assert trace_fingerprint(TRACE) != trace_fingerprint(changed)


class TestSweepCache:
    def _result(self):
        return run_workload("array", "context", limit=400)

    def test_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        result = self._result()
        cache.store(key(), result)
        assert cache.load(key()) == result
        assert cache.counters.hits == 1 and cache.counters.stores == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.load(key()) is None
        assert cache.counters.misses == 1

    def test_corrupt_file_is_miss_not_error(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store(key(), self._result())
        (tmp_path / f"{key()}.json").write_text("{ not json", encoding="utf-8")
        assert cache.load(key()) is None
        assert cache.counters.errors == 1

    def test_codec_version_skew_is_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store(key(), self._result())
        path = tmp_path / f"{key()}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["result"]["codec"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(key()) is None

    def test_directory_deleted_mid_run(self, tmp_path):
        import shutil

        root = tmp_path / "cache"
        cache = SweepCache(root)
        cache.store(key(), self._result())
        shutil.rmtree(root)
        assert cache.load(key()) is None  # cold again, no crash
        cache.store(key(), self._result())  # directory recreated
        assert cache.load(key()) == self._result()


class TestEndToEndDegradation:
    def test_corrupt_cache_rerun_matches_clean(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = compare(["array"], ("none", "context"), limit=800, cache=False)
        compare(["array"], ("none", "context"), limit=800, cache=cache_dir)
        for path in sorted(cache_dir.glob("*.json")):
            path.write_text("garbage", encoding="utf-8")
        rerun = compare(["array"], ("none", "context"), limit=800, cache=cache_dir)
        for wl in clean.workloads():
            for pf in clean.prefetchers():
                assert clean.get(wl, pf) == rerun.get(wl, pf)


class TestResolveCache:
    def test_none_uses_default(self, tmp_path):
        fallback = SweepCache(tmp_path)
        assert resolve_cache(None, default=fallback) is fallback
        assert resolve_cache(None, default=None) is None

    def test_false_forces_off(self, tmp_path):
        assert resolve_cache(False, default=SweepCache(tmp_path)) is None

    def test_path_and_instance(self, tmp_path):
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, SweepCache)
        assert cache.root == tmp_path / "c"
        assert resolve_cache(cache) is cache

    def test_true_uses_default_location(self):
        cache = resolve_cache(True)
        assert isinstance(cache, SweepCache)
