"""Common prefetcher interface.

Every prefetcher — the baselines and the paper's context-based prefetcher —
observes the demand-access stream through :meth:`Prefetcher.on_access` and
returns the prefetch requests it wants issued.  The simulator dispatches
non-shadow requests to the memory hierarchy and reports issue outcomes back
via :meth:`Prefetcher.on_prefetch_issue`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import NamedTuple

from repro.hints import NO_HINTS, SemanticHints


class AccessInfo(NamedTuple):
    """Everything a prefetcher may observe about one demand access.

    The hardware attributes of Table 1 (PC, address history via the
    prefetcher's own tracking, branch history, register value, previously
    loaded data) and the compiler hints are all carried here; each
    prefetcher consumes the subset it understands.

    A named tuple rather than a frozen dataclass: one is built per demand
    access on the simulator's hot path, and tuple construction runs at
    C speed while staying immutable and slot-free.
    """

    index: int  # position in the demand-access stream
    cycle: int  # issue cycle (for timing-aware prefetchers)
    addr: int  # byte address
    pc: int  # instruction pointer of the access
    is_load: bool = True
    #: whether the access hit the L1 (classic prefetchers train on misses)
    l1_hit: bool = False
    #: a *primary* L1 miss (not a merge with an in-flight fetch); this is
    #: the stream a miss-driven prefetcher actually observes
    primary_miss: bool = False
    branch_history: int = 0
    reg_value: int = 0  # live "key" register contents
    last_value: int = 0  # data returned by the previous load
    hints: SemanticHints = NO_HINTS


class PrefetchRequest(NamedTuple):
    """One prefetch the prefetcher wants to perform.

    ``shadow`` requests are tracked for learning but never dispatched to
    memory (Section 4.1).  ``meta`` is opaque prefetcher-private state used
    to route feedback (e.g. the CST key that produced the prediction).

    A named tuple (C-speed construction): requests are built per predicted
    line on the hot path and never mutated — issue rejections mutate the
    queue entry carried in ``meta``, not the request.
    """

    addr: int
    shadow: bool = False
    meta: object | None = None


class Prefetcher(abc.ABC):
    """Abstract prefetcher driven by the demand-access stream."""

    # weak-referenceable so the native kernel can key its state handles
    # on the prefetcher instance without extending its lifetime
    __slots__ = ("__weakref__",)

    #: short name used in reports and figures
    name: str = "base"

    @abc.abstractmethod
    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        """Observe a demand access; return prefetches to issue."""

    def on_prefetch_issue(
        self, request: PrefetchRequest, issued: bool, reason: str
    ) -> None:
        """Learn whether a returned request was actually sent to memory."""

    def storage_bits(self) -> int:
        """Hardware storage the configuration would require, in bits."""
        return 0

    def accuracy(self) -> float:
        """Lifetime prediction accuracy in [0, 1].

        Part of the base contract so results and figures can report it
        uniformly; prefetchers without self-assessed feedback (the
        baselines) report 0.0.
        """
        return 0.0

    def storage_kib(self) -> float:
        """Storage in KiB (Table 2 reports prefetcher sizes this way)."""
        return self.storage_bits() / 8 / 1024

    def reset(self) -> None:
        """Clear learned state (between simulation phases)."""

    def is_pristine(self) -> bool:
        """True when no learned state exists yet (never observed an access).

        The native kernel may only *adopt* a prefetcher whose state it can
        reproduce — an empty one.  Families without a native port keep the
        conservative default.
        """
        return False


@dataclass(slots=True)
class DegreeCounter:
    """Small helper shared by baselines that issue ``degree`` prefetches."""

    degree: int = 1
    issued: int = 0

    def take(self) -> bool:
        if self.issued >= self.degree:
            return False
        self.issued += 1
        return True

    def reset(self) -> None:
        self.issued = 0


__all__ = [
    "AccessInfo",
    "DegreeCounter",
    "Prefetcher",
    "PrefetchRequest",
]
