"""Deterministic profiling harness for the per-access kernel.

``python -m repro profile <workload> <prefetcher>`` answers two
questions about one simulated run:

1. **Where does the work go, in events?**  The functional units of the
   context prefetcher (feedback, collection, reduction, prediction —
   Section 5 of the paper) are inlined into ``on_access`` on the hot
   path, so a function-level profiler cannot attribute time to them.
   Instead the harness reads each unit's *event counters* off the
   component state after the run.  These counts are bit-exact run to
   run — the deterministic layer of the report — and they are the
   numbers a hot-path rewrite must hold invariant.

2. **Where does the time go, in functions?**  An optional
   :mod:`cProfile` pass over the same run, reported via
   :mod:`pstats`.  Call counts in that table are deterministic;
   the timings are wall-clock and vary with the machine, which is why
   they live in a clearly separated section instead of the counters.

The harness itself never reads the wall clock (rule ``DET003``):
cProfile's timer is internal to the optional profiling section and no
simulated behaviour depends on it.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field

from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator


@dataclass(slots=True)
class ProfileReport:
    """One profiled run: deterministic counters + optional timing table."""

    workload: str
    prefetcher: str
    accesses: int
    #: unit name -> {counter -> value}; insertion order is report order
    units: dict[str, dict[str, int]]
    result: SimulationResult
    #: pstats text (top functions by cumulative time), or "" when skipped
    timing_table: str = ""
    top: int = field(default=12)
    #: did the run go through the compiled kernel?
    native: bool = False
    #: native phase name -> cumulative seconds (from cProfile), only
    #: populated for native runs profiled with cProfile; call structure
    #: is deterministic, the timings are machine-dependent
    native_phases: dict[str, float] = field(default_factory=dict)
    #: in-kernel batch driver counters (batches dispatched, cells per
    #: path, thread setting) accumulated in this process — all zero for
    #: single-cell runs; see ``repro.sim.native.adapter.batch_counters``
    batch_counters: dict[str, int] = field(default_factory=dict)


def _unit_counters(
    sim: Simulator, result: SimulationResult, *, native_ran: bool = False
) -> dict[str, dict[str, int]]:
    """Per-unit event counters, read off the components after a run.

    Units absent from a prefetcher (the baselines have no reducer or
    CST) are simply omitted, so the report works for every family.

    After a native run the Python-side components were never touched —
    their state lives in the compiled kernel — so the memory counters
    come from the result block instead (the parity suites prove the two
    sources identical); the MSHR merge counters are not exported by the
    kernel and are omitted from native reports.
    """
    pf = sim.prefetcher
    units: dict[str, dict[str, int]] = {}

    # after a native context run the RL state (CST, reducer, queue,
    # policy) lives in the compiled handle; read the same counters off
    # the kernel so the unit blocks match the interpreted report
    ctx_native: dict[str, int] | None = None
    if native_ran:
        from repro.sim.native.adapter import context_unit_counters

        ctx_native = context_unit_counters(pf)

    queue = getattr(pf, "queue", None)
    if ctx_native is not None:
        units["feedback"] = {
            "queue_hits": ctx_native["queue_hits"],
            "queue_expirations": ctx_native["queue_expirations"],
            "rewards_applied": ctx_native["rewards_applied"],
        }
    elif queue is not None:
        units["feedback"] = {
            "queue_hits": queue.hits,
            "queue_expirations": queue.expirations,
            "rewards_applied": getattr(pf, "rewards_applied", 0),
        }

    cst = getattr(pf, "cst", None)
    if ctx_native is not None:
        units["collection"] = {
            "associations_added": ctx_native["associations_added"],
            "associations_rejected_full": ctx_native["associations_rejected_full"],
            "associations_rejected_range": ctx_native["associations_rejected_range"],
            "cst_conflict_evictions": ctx_native["cst_conflicts"],
            "history_records": ctx_native["history_records"],
        }
    elif cst is not None:
        history = getattr(pf, "history", None)
        units["collection"] = {
            "associations_added": cst.associations_added,
            "associations_rejected_full": cst.associations_rejected_full,
            "associations_rejected_range": cst.associations_rejected_range,
            "cst_conflict_evictions": cst.conflict_evictions,
            "history_records": history._count if history is not None else 0,
        }

    reducer = getattr(pf, "reducer", None)
    if ctx_native is not None:
        units["reduction"] = {
            "allocations": ctx_native["reducer_allocations"],
            "conflict_evictions": ctx_native["reducer_conflicts"],
            "activations": ctx_native["reducer_activations"],
            "deactivations": ctx_native["reducer_deactivations"],
        }
    elif reducer is not None:
        units["reduction"] = {
            "allocations": reducer.allocations,
            "conflict_evictions": reducer.conflict_evictions,
            "activations": reducer.activations,
            "deactivations": reducer.deactivations,
        }

    policy = getattr(pf, "policy", None)
    prediction: dict[str, int] = {
        "prefetches_issued": result.prefetches_issued,
        "prefetches_shadow": result.prefetches_shadow,
        "prefetches_rejected_mshr": result.prefetches_rejected,
        "prefetches_redundant": result.prefetches_redundant,
    }
    if ctx_native is not None:
        prediction["explorations"] = ctx_native["explorations"]
        prediction["exploitations"] = ctx_native["exploitations"]
        prediction["predictions_real"] = ctx_native["predictions_real"]
        prediction["predictions_shadow"] = ctx_native["predictions_shadow"]
        prediction["window_updates"] = ctx_native["window_updates"]
    elif policy is not None:
        prediction["explorations"] = policy.explorations
        prediction["exploitations"] = policy.exploitations
    units["prediction"] = prediction

    if native_ran:
        units["memory"] = {
            "l1_hits": result.l1.hits,
            "l1_misses": result.l1.misses,
            "l2_hits": result.l2.hits,
            "l2_misses": result.l2.misses,
        }
    else:
        hier = sim.hierarchy
        units["memory"] = {
            "l1_hits": hier.l1_stats.hits,
            "l1_misses": hier.l1_stats.misses,
            "l2_hits": hier.l2_stats.hits,
            "l2_misses": hier.l2_stats.misses,
            "mshr_merges": hier.l2_mshrs.merges,
            "mshr_rejections": hier.l2_mshrs.rejections,
        }
    return units


#: the named native phases, in execution order; PERF003 pins each one to
#: a scalar-fallback counterpart in ``repro.sim.native.VECTOR_PHASES``
_NATIVE_PHASE_FUNCS = (
    "phase_decode",
    "phase_kernel",
    "phase_batch_kernel",
    "phase_finalize",
)


def _native_phase_times(profiler: cProfile.Profile) -> dict[str, float]:
    """Cumulative seconds per native phase, extracted from a cProfile run.

    The adapter routes every native run through named top-level phase
    functions precisely so a function-level profiler can attribute the
    batch work; this pulls those rows out of the stats table.
    """
    out: dict[str, float] = {}
    stats = pstats.Stats(profiler)
    for (filename, _line, funcname), row in stats.stats.items():  # type: ignore[attr-defined]
        if funcname in _NATIVE_PHASE_FUNCS and "adapter" in filename:
            out[funcname] = row[3]  # cumulative time
    return {name: out[name] for name in _NATIVE_PHASE_FUNCS if name in out}


def profile_run(
    workload_name: str,
    prefetcher_name: str,
    *,
    limit: int | None = None,
    with_cprofile: bool = True,
    top: int = 12,
    native: bool = False,
) -> ProfileReport:
    """Simulate one (workload, prefetcher) pair and profile the run.

    With ``native=True`` the run goes through the compiled batch kernel
    (falling back per the usual rules) and the report attributes time to
    the decode/kernel/finalize phases instead of per-access functions.
    """
    # imported here so ``repro.sim`` stays import-light for the workers
    from repro.sim.config import PREFETCHER_FACTORIES
    from repro.workloads.suites import get_workload

    trace = get_workload(workload_name).build().trace()
    if limit is not None:
        trace = trace[:limit]
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher_name](), native=native)

    timing_table = ""
    native_phases: dict[str, float] = {}
    if with_cprofile:
        profiler = cProfile.Profile()
        profiler.enable()
        result = sim.run(trace, workload_name=workload_name)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(top)
        timing_table = buf.getvalue()
        if sim.last_run_native:
            native_phases = _native_phase_times(profiler)
    else:
        result = sim.run(trace, workload_name=workload_name)

    if native:
        from repro.sim.native.adapter import batch_counters

        batch = dict(batch_counters())
    else:
        batch = {}

    return ProfileReport(
        workload=workload_name,
        prefetcher=prefetcher_name,
        accesses=len(trace),
        units=_unit_counters(sim, result, native_ran=sim.last_run_native),
        result=result,
        timing_table=timing_table,
        top=top,
        native=sim.last_run_native,
        native_phases=native_phases,
        batch_counters=batch,
    )


def render(report: ProfileReport) -> str:
    """Human-readable report; the counter section is bit-reproducible."""
    mode = "native kernel" if report.native else "interpreted"
    lines = [
        f"profile: {report.workload} / {report.prefetcher} "
        f"({report.accesses} accesses, {mode})",
        "",
        "per-unit event counters (deterministic):",
    ]
    for unit, counters in report.units.items():
        lines.append(f"  [{unit}]")
        for name, value in counters.items():
            per_access = value / report.accesses if report.accesses else 0.0
            lines.append(f"    {name:28s} {value:>10d}  ({per_access:.3f}/access)")
    result = report.result
    lines += [
        "",
        f"result: cycles={result.cycles}  ipc={result.ipc:.3f}  "
        f"accuracy={result.prefetcher_accuracy:.3f}",
    ]
    if report.native_phases:
        total = sum(report.native_phases.values())
        lines += ["", "native phase timings (machine-dependent):"]
        for name, seconds in report.native_phases.items():
            share = seconds / total if total else 0.0
            lines.append(f"    {name:28s} {seconds:>10.4f}s  ({share:5.1%})")
    if any(report.batch_counters.values()):
        lines += ["", "batch kernel counters (this process, deterministic):"]
        for name, value in report.batch_counters.items():
            lines.append(f"    {name:28s} {value:>10d}")
    if report.timing_table:
        lines += [
            "",
            f"cProfile, top {report.top} by cumulative time "
            "(call counts deterministic; timings machine-dependent):",
            report.timing_table.rstrip(),
        ]
    return "\n".join(lines)
