"""Tests for address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    BLOCK_BYTES,
    LINE_BYTES,
    align_down,
    block_of,
    block_to_addr,
    is_power_of_two,
    line_of,
    line_to_addr,
)


class TestAlignDown:
    def test_already_aligned(self):
        assert align_down(128, 64) == 128

    def test_rounds_down(self):
        assert align_down(130, 64) == 128

    def test_zero(self):
        assert align_down(0, 64) == 0

    def test_one_below_boundary(self):
        assert align_down(127, 64) == 64

    @given(st.integers(min_value=0, max_value=1 << 48), st.sampled_from([8, 32, 64, 4096]))
    def test_result_is_aligned_and_close(self, addr, gran):
        out = align_down(addr, gran)
        assert out % gran == 0
        assert 0 <= addr - out < gran


class TestBlockLineMath:
    def test_block_of_default_granularity(self):
        assert block_of(0) == 0
        assert block_of(BLOCK_BYTES - 1) == 0
        assert block_of(BLOCK_BYTES) == 1

    def test_line_of_default_granularity(self):
        assert line_of(LINE_BYTES - 1) == 0
        assert line_of(LINE_BYTES) == 1

    def test_block_roundtrip(self):
        assert block_to_addr(block_of(1000)) <= 1000 < block_to_addr(block_of(1000) + 1)

    def test_line_roundtrip(self):
        assert line_to_addr(line_of(1000)) <= 1000 < line_to_addr(line_of(1000) + 1)

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_block_within_line_consistency(self, addr):
        # 32-byte blocks nest exactly two per 64-byte line
        assert block_of(addr) // 2 == line_of(addr)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1 << 20])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)
