"""Action selection: ε-greedy contextual bandit with adaptive exploration.

Section 4.1: the prefetcher usually exploits (prefetch the highest-scoring
candidate) but periodically explores a random candidate from the set of
previously correlated addresses.  Exploration shrinks as accuracy
converges, after Tokic's value-difference-based adaptation — here the
signal is the exponential moving average of the prefetch-queue hit rate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.config import ContextPrefetcherConfig
from repro.core.cst import Candidate, CSTEntry


@dataclass
class Selection:
    """Candidates chosen for one prediction round."""

    real: list[Candidate]
    shadow: list[Candidate]
    explored: bool = False


class EpsilonGreedyPolicy:
    """Selects prefetch candidates from a CST entry."""

    def __init__(self, config: ContextPrefetcherConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._accuracy_ema = 0.0
        self.explorations = 0
        self.exploitations = 0

    # ------------------------------------------------------------------
    # accuracy tracking

    @property
    def accuracy(self) -> float:
        return self._accuracy_ema

    def observe_outcome(self, hit: bool) -> None:
        """Fold one resolved prediction into the accuracy EMA."""
        alpha = self.config.accuracy_ema_alpha
        self._accuracy_ema += alpha * (float(hit) - self._accuracy_ema)

    def epsilon(self) -> float:
        """Current exploration rate."""
        cfg = self.config
        if not cfg.adaptive_epsilon:
            return cfg.fixed_epsilon
        # High accuracy -> little exploration; cold predictor -> lots.
        return cfg.epsilon_min + (cfg.epsilon_max - cfg.epsilon_min) * (
            1.0 - self._accuracy_ema
        )

    # ------------------------------------------------------------------
    # degree throttling (Section 4.2)

    def degree(self) -> int:
        """Prefetch degree as a function of the accuracy EMA."""
        cfg = self.config
        level = 1
        for threshold in cfg.degree_thresholds:
            if self._accuracy_ema >= threshold:
                level += 1
        return min(level, cfg.max_degree)

    # ------------------------------------------------------------------

    def select(self, entry: CSTEntry) -> Selection:
        """Pick real and shadow candidates from a CST entry.

        Exploit: the top-scoring candidates above the prefetch threshold,
        up to the current degree.  Explore: with probability ε, one random
        stored candidate is prefetched *for real* even if unproven (that
        is the bandit's exploration arm).  Additional random candidates go
        out as shadow prefetches to gather off-policy feedback.
        """
        cfg = self.config
        ranked = entry.ranked()
        if not ranked:
            return Selection(real=[], shadow=[])

        real = [
            cand
            for cand in ranked[: self.degree()]
            if cand.score >= cfg.prefetch_score_threshold
        ]
        explored = False
        if self._rng.random() < self.epsilon():
            choice = self._rng.choice(ranked)
            explored = True
            self.explorations += 1
            if all(choice is not c for c in real):
                real.append(choice)
        else:
            self.exploitations += 1

        shadow: list[Candidate] = []
        if cfg.shadow_prefetches and self._rng.random() < cfg.shadow_probability:
            choice = self._rng.choice(ranked)
            if all(choice is not c for c in real):
                shadow.append(choice)
        return Selection(real=real, shadow=shadow, explored=explored)

    def reset(self) -> None:
        self._rng = random.Random(self.config.seed)
        self._accuracy_ema = 0.0
        self.explorations = 0
        self.exploitations = 0


class SoftmaxPolicy(EpsilonGreedyPolicy):
    """Boltzmann action selection over candidate scores.

    One of the paper's future-work directions ("policy improvement
    techniques in the spirit of policy search"): instead of picking the
    max-score candidate and exploring uniformly at random, candidates are
    sampled with probability ∝ exp(score / τ).  The temperature anneals
    with the accuracy EMA, so a converged predictor becomes near-greedy
    while a cold one explores broadly.
    """

    def temperature(self) -> float:
        cfg = self.config
        # anneal toward 1/4 of the base temperature as accuracy -> 1
        return cfg.softmax_temperature * (1.0 - 0.75 * self._accuracy_ema)

    def _sample(self, candidates: list[Candidate]) -> Candidate:
        tau = self.temperature()
        top = max(c.score for c in candidates)
        weights = [math.exp((c.score - top) / tau) for c in candidates]
        return self._rng.choices(candidates, weights)[0]

    def select(self, entry: CSTEntry) -> Selection:
        cfg = self.config
        ranked = entry.ranked()
        if not ranked:
            return Selection(real=[], shadow=[])

        real: list[Candidate] = []
        for _ in range(self.degree()):
            pool = [
                c
                for c in ranked
                if all(c is not chosen for chosen in real)
            ]
            if not pool:
                break
            choice = self._sample(pool)
            if choice is ranked[0]:
                self.exploitations += 1
            else:
                self.explorations += 1
            # sampled low scorers below the prefetch threshold still count
            # as exploration and go out for real, like the ε-greedy arm
            real.append(choice)

        shadow: list[Candidate] = []
        if cfg.shadow_prefetches and self._rng.random() < cfg.shadow_probability:
            choice = self._rng.choice(ranked)
            if all(choice is not c for c in real):
                shadow.append(choice)
        return Selection(real=real, shadow=shadow, explored=bool(real))


def make_policy(config: ContextPrefetcherConfig) -> EpsilonGreedyPolicy:
    """Instantiate the configured action-selection policy."""
    if config.policy == "softmax":
        return SoftmaxPolicy(config)
    return EpsilonGreedyPolicy(config)
