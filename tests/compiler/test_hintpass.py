"""Tests for the hint-injection pass (the Section 6 rule)."""

from repro.compiler.hintpass import HintInjectionPass
from repro.compiler.ir import FunctionBuilder
from repro.compiler.programs import build_array_sum, build_list_sum
from repro.hints import RefForm, TypeRegistry


class TestPointerLoadRule:
    def test_pointer_field_load_hinted(self):
        fn = build_list_sum()
        table = HintInjectionPass().run(fn)
        # the "next" load in block "body" at index 2 is pointer-typed
        hints = table.lookup("body", 2)
        assert hints is not None
        assert hints.link_offset == 8
        assert hints.ref_form is RefForm.ARROW

    def test_data_field_load_not_hinted(self):
        fn = build_list_sum()
        table = HintInjectionPass().run(fn)
        # the "value" load in block "body" at index 0 is an int
        assert table.lookup("body", 0) is None

    def test_overhead_accounting(self):
        fn = build_list_sum()
        table = HintInjectionPass().run(fn)
        assert table.memory_instructions == 2
        assert table.hinted_instructions == 1
        assert table.hint_overhead == 0.5

    def test_int_array_load_not_hinted(self):
        fn = build_array_sum()
        table = HintInjectionPass().run(fn)
        assert table.hinted_instructions == 0

    def test_pointer_array_load_hinted_as_index(self):
        fb = FunctionBuilder("f", params=("arr", "i"))
        fb.block("entry")
        fb.load_idx("p", "arr", "i", elem_type="ptr:node")
        fb.ret("p")
        table = HintInjectionPass().run(fb.build())
        hints = table.lookup("entry", 0)
        assert hints is not None
        assert hints.ref_form is RefForm.INDEX

    def test_pointer_store_hinted(self):
        fb = FunctionBuilder("f", params=("obj", "p"))
        fb.struct("node", [("value", 0, "int"), ("next", 8, "ptr:node")])
        fb.block("entry")
        fb.store("p", "obj", "node", "next")
        fb.store("p", "obj", "node", "value")
        fb.ret(0)
        table = HintInjectionPass().run(fb.build())
        assert table.lookup("entry", 0) is not None  # pointer store
        assert table.lookup("entry", 1) is None  # data store


class TestTypeEnumeration:
    def test_same_struct_same_id(self):
        registry = TypeRegistry()
        pass_ = HintInjectionPass(registry)
        table = pass_.run(build_list_sum())
        ids = {h.type_id for h in table.hints.values()}
        assert len(ids) == 1

    def test_distinct_structs_distinct_ids(self):
        fb = FunctionBuilder("f", params=("a", "b"))
        fb.struct("alpha", [("link", 0, "ptr:alpha")])
        fb.struct("beta", [("link", 0, "ptr:beta")])
        fb.block("entry")
        fb.load("x", "a", "alpha", "link")
        fb.load("y", "b", "beta", "link")
        fb.ret(0)
        table = HintInjectionPass().run(fb.build())
        ids = {h.type_id for h in table.hints.values()}
        assert len(ids) == 2

    def test_registry_shared_across_functions(self):
        registry = TypeRegistry()
        pass_ = HintInjectionPass(registry)
        t1 = pass_.run(build_list_sum())
        t2 = pass_.run(build_list_sum())
        id1 = next(iter(t1.hints.values())).type_id
        id2 = next(iter(t2.hints.values())).type_id
        assert id1 == id2
