"""Property-based robustness tests over the full simulator pipeline.

Hypothesis generates adversarial access streams — arbitrary addresses,
gaps, dependence flags, branch patterns — and every prefetcher must
digest them without crashing while the system invariants hold.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.memory.stats import ACCESS_CLASS_ORDER, AccessClass
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryAccess

access_strategy = st.builds(
    MemoryAccess,
    addr=st.integers(min_value=1, max_value=1 << 34),
    pc=st.sampled_from([0x400000 + 8 * i for i in range(6)]),
    is_load=st.booleans(),
    inst_gap=st.integers(min_value=0, max_value=12),
    depends_on_prev=st.booleans(),
    branches=st.lists(st.booleans(), max_size=3).map(tuple),
    reg_value=st.integers(min_value=0, max_value=1 << 20),
    value=st.integers(min_value=0, max_value=1 << 34),
)

trace_strategy = st.lists(access_strategy, min_size=1, max_size=120)

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSimulatorNeverCrashes:
    @_settings
    @given(trace=trace_strategy, pf_name=st.sampled_from(sorted(PREFETCHER_FACTORIES)))
    def test_any_trace_any_prefetcher(self, trace, pf_name):
        sim = Simulator(PREFETCHER_FACTORIES[pf_name]())
        result = sim.run(trace)
        assert result.cycles >= 0
        assert result.l1.accesses == len(trace)

    @_settings
    @given(trace=trace_strategy)
    def test_invariants_hold_on_random_traffic(self, trace):
        result = Simulator(ContextPrefetcher()).run(trace)
        # classification partitions demand accesses
        demand = [
            c for c in ACCESS_CLASS_ORDER if c is not AccessClass.PREFETCH_NEVER_HIT
        ]
        assert sum(result.classifier.counts[c] for c in demand) == len(trace)
        # cache counters are consistent
        assert result.l1.hits + result.l1.misses == result.l1.accesses
        assert result.l2.accesses <= result.l1.misses
        # IPC bounded by machine width
        assert result.ipc <= 4.0 + 1e-9

    @_settings
    @given(trace=trace_strategy)
    def test_timing_monotone_in_dram_latency(self, trace):
        from repro.memory.hierarchy import HierarchyConfig
        from repro.prefetchers.nopf import NoPrefetcher

        fast = Simulator(
            NoPrefetcher(), hierarchy_config=HierarchyConfig(dram_latency=100)
        ).run(trace)
        slow = Simulator(
            NoPrefetcher(), hierarchy_config=HierarchyConfig(dram_latency=500)
        ).run(trace)
        assert slow.cycles >= fast.cycles


class TestContextPrefetcherRobustness:
    @_settings
    @given(trace=trace_strategy)
    def test_requests_always_wellformed(self, trace):
        from repro.prefetchers.base import AccessInfo

        pf = ContextPrefetcher()
        for i, access in enumerate(trace):
            requests = pf.on_access(
                AccessInfo(
                    index=i,
                    cycle=i,
                    addr=access.addr,
                    pc=access.pc,
                    reg_value=access.reg_value,
                    last_value=access.value,
                    hints=access.hints,
                )
            )
            for request in requests:
                assert request.addr >= 0
                assert request.addr % pf.config.delta_granularity == 0

    @_settings
    @given(
        trace=trace_strategy,
        policy=st.sampled_from(["egreedy", "softmax"]),
        adaptive=st.booleans(),
    )
    def test_extension_configs_never_crash(self, trace, policy, adaptive):
        config = ContextPrefetcherConfig(
            policy=policy, adaptive_window=adaptive, window_update_period=16
        )
        result = Simulator(ContextPrefetcher(config)).run(trace)
        assert result.cycles >= 0

    @_settings
    @given(trace=trace_strategy)
    def test_scores_stay_saturated(self, trace):
        pf = ContextPrefetcher()
        Simulator(pf).run(trace)
        cfg = pf.config
        for entry in pf.cst._entries.values():
            for cand in entry.candidates:
                assert cfg.score_min <= cand.score <= cfg.score_max
                assert cfg.delta_min <= cand.delta <= cfg.delta_max
