"""Shared test fixtures.

The CLI installs process-wide execution defaults (jobs / result cache /
trace store / native kernel) via ``set_default_execution``; without a
reset, a CLI test that ran first would leak its cache and store paths
into every later ``compare()`` call in the same pytest process.  Restore
the defaults around every test so ordering can never matter.

``--runslow`` opts into tests marked ``@pytest.mark.slow`` — extended
sweeps (the wide differential-fuzz tiers) that are too expensive for the
tier-1 run but worth running before a release or a kernel change.
"""

import pytest

from repro.sim.parallel import default_execution, set_default_execution


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' (extended fuzz/sweep tiers)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: extended tier, runs only with --runslow"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _restore_execution_defaults():
    previous = default_execution()
    yield
    set_default_execution(
        jobs=previous.jobs,
        cache=previous.cache,
        store=previous.store,
        native=previous.native,
    )
