"""Tests for the bell-shaped reward function and distance formulas."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reward import RewardFunction, target_prefetch_distance


class TestWindowShape:
    def test_peak_at_center(self):
        reward = RewardFunction()
        assert reward(30) == reward.peak

    def test_positive_throughout_window(self):
        reward = RewardFunction()
        assert all(reward(d) >= 1 for d in range(18, 51))

    def test_negative_outside_window(self):
        reward = RewardFunction()
        assert reward(17) < 0
        assert reward(51) < 0
        assert reward(0) < 0
        assert reward(128) < 0

    def test_bell_decays_from_center(self):
        reward = RewardFunction()
        left = [reward(d) for d in range(18, 31)]
        right = [reward(d) for d in range(30, 51)]
        assert left == sorted(left)  # non-decreasing toward the peak
        assert right == sorted(right, reverse=True)

    def test_late_and_early_penalties_differ(self):
        reward = RewardFunction(late_penalty=-1, early_penalty=-2)
        assert reward(5) == -1
        assert reward(80) == -2
        assert reward.expiry_reward() == -2

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            RewardFunction()(-1)

    @given(st.integers(min_value=0, max_value=500))
    def test_reward_bounded(self, depth):
        reward = RewardFunction()
        value = reward(depth)
        assert reward.early_penalty <= value <= reward.peak


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            RewardFunction(lo=50, hi=18)

    def test_center_must_be_inside(self):
        with pytest.raises(ValueError):
            RewardFunction(lo=18, hi=50, center=60)

    def test_penalties_must_be_negative(self):
        with pytest.raises(ValueError):
            RewardFunction(late_penalty=1)

    def test_peak_must_be_positive(self):
        with pytest.raises(ValueError):
            RewardFunction(peak=0)


class TestCurve:
    def test_curve_matches_call(self):
        reward = RewardFunction()
        curve = reward.curve(max_depth=60)
        assert len(curve) == 61
        assert all(reward(d) == v for d, v in curve)

    def test_figure5_shape(self):
        # Figure 5: negative edge, positive bell over [18, 50], negative tail
        curve = dict(RewardFunction().curve(80))
        assert curve[10] < 0 < curve[30]
        assert curve[60] < 0


class TestTargetDistance:
    def test_paper_formula(self):
        # L1 miss penalty = L2 latency + L2 miss rate * DRAM latency
        # distance = penalty * IPC * P(mem op)
        distance = target_prefetch_distance(
            l2_latency=20, l2_miss_rate=0.1, dram_latency=300, ipc=1.2, prob_mem_op=0.5
        )
        assert distance == pytest.approx((20 + 30) * 1.2 * 0.5)

    def test_average_workload_lands_near_30(self):
        # Section 4.3: target distances range ~10-90, averaging ~30
        distance = target_prefetch_distance(20, 0.25, 300, 1.0, 0.33)
        assert 20 < distance < 40

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            target_prefetch_distance(20, 1.5, 300, 1.0, 0.3)
        with pytest.raises(ValueError):
            target_prefetch_distance(20, 0.5, 300, 1.0, -0.1)
