"""Tests for context attributes and attribute-set bitmaps."""

from hypothesis import given, strategies as st

from repro.core.attributes import (
    ALL_ATTRIBUTES,
    DEFAULT_ACTIVE,
    Attribute,
    AttributeSet,
)


class TestAttributeEnum:
    def test_eight_attributes_as_in_table1(self):
        assert len(ALL_ATTRIBUTES) == 8

    def test_hardware_and_compiler_split(self):
        compiler = {Attribute.TYPE_ID, Attribute.LINK_OFFSET, Attribute.REF_FORM}
        hardware = set(ALL_ATTRIBUTES) - compiler
        assert len(hardware) == 5

    def test_addr_history_activates_last(self):
        # "this feature ... must be used sparingly" (Table 1)
        assert ALL_ATTRIBUTES[-1] is Attribute.ADDR_HISTORY


class TestAttributeSet:
    def test_default_active_contains_ip_and_hints(self):
        active = AttributeSet()
        assert Attribute.IP in active
        assert Attribute.TYPE_ID in active
        assert Attribute.ADDR_HISTORY not in active

    def test_membership_and_iteration_agree(self):
        active = AttributeSet((Attribute.IP, Attribute.REG_VALUE))
        assert list(active) == [Attribute.IP, Attribute.REG_VALUE]
        assert len(active) == 2

    def test_from_bits_round_trip(self):
        active = AttributeSet(DEFAULT_ACTIVE)
        assert AttributeSet.from_bits(active.bits) == active

    def test_equality_and_hash(self):
        a = AttributeSet((Attribute.IP,))
        b = AttributeSet((Attribute.IP,))
        assert a == b and hash(a) == hash(b)

    def test_indices_cache_matches_membership(self):
        active = AttributeSet((Attribute.IP, Attribute.BRANCH_HISTORY))
        assert active.indices == (int(Attribute.IP), int(Attribute.BRANCH_HISTORY))


class TestActivation:
    def test_activate_next_picks_first_inactive(self):
        active = AttributeSet()
        grown = active.activate_next()
        assert Attribute.LAST_VALUE in grown  # first inactive after defaults

    def test_activate_next_saturates(self):
        active = AttributeSet(ALL_ATTRIBUTES)
        assert active.activate_next() is active

    def test_deactivate_last_drops_most_recent(self):
        active = AttributeSet().activate_next()
        shrunk = active.deactivate_last()
        assert Attribute.LAST_VALUE not in shrunk

    def test_ip_never_deactivated(self):
        active = AttributeSet((Attribute.IP,))
        assert active.deactivate_last() is active

    def test_activate_then_deactivate_round_trip(self):
        active = AttributeSet()
        assert active.activate_next().deactivate_last() == active

    @given(st.integers(min_value=1, max_value=255))
    def test_activate_never_shrinks(self, bits):
        active = AttributeSet.from_bits(bits | 1)  # ensure IP set
        grown = active.activate_next()
        assert len(grown) >= len(active)
        assert all(attr in grown for attr in active)

    @given(st.integers(min_value=1, max_value=255))
    def test_deactivate_never_grows(self, bits):
        active = AttributeSet.from_bits(bits | 1)
        shrunk = active.deactivate_last()
        assert len(shrunk) <= len(active)
