"""The prefetch/feedback queue (feedback unit, Section 5).

Holds the most recent predictions — real and shadow — awaiting feedback.
On every demand access the queue is searched for predictions of the
current address; the *hit depth* (accesses since issue) drives the reward
function.  Entries that expire from the queue without a hit trigger the
negative expiry reward, demoting stale associations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import NamedTuple

#: the generated NamedTuple __new__ is a Python frame per construction
#: that does exactly ``tuple.__new__(cls, (args...))``; calling that
#: directly builds an identical instance without the frame
_tuple_new = tuple.__new__


@dataclass(slots=True)
class QueueEntry:
    """One outstanding prediction."""

    reduced_hash: int  # context that produced the prediction
    delta: int  # stored delta that was replayed
    target_block: int  # predicted block (prefetcher granularity)
    issue_index: int  # access-stream index at prediction time
    shadow: bool = False
    hit: bool = False


class FeedbackEvent(NamedTuple):
    """A reward-worthy event surfaced to the learning loop.

    A named tuple: one is built per queue hit/expiry on the hot path and
    consumed immutably by the feedback unit.
    """

    entry: QueueEntry
    depth: int  # accesses between issue and hit (or capacity on expiry)
    expired: bool = False


class PrefetchQueue:
    """Bounded FIFO of outstanding predictions with hit-depth feedback."""

    __slots__ = ("capacity", "_queue", "_by_block", "hits", "expirations")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("prefetch queue needs capacity >= 1")
        self.capacity = capacity
        self._queue: deque[QueueEntry] = deque()
        #: target block -> unhit entries, for O(1) demand matching
        self._by_block: dict[int, list[QueueEntry]] = {}
        self.hits = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------

    def push(self, entry: QueueEntry) -> list[FeedbackEvent]:
        """Add a prediction; returns expiry events for displaced entries."""
        events: list[FeedbackEvent] = []
        queue = self._queue
        by_block = self._by_block
        queue.append(entry)
        target = entry.target_block
        bucket = by_block.get(target)
        if bucket is None:
            by_block[target] = [entry]
        else:
            bucket.append(entry)
        capacity = self.capacity
        while len(queue) > capacity:
            evicted = queue.popleft()
            bucket = by_block.get(evicted.target_block)
            if bucket is not None:
                try:
                    bucket.remove(evicted)
                except ValueError:
                    pass
                if not bucket:
                    del by_block[evicted.target_block]
            if not evicted.hit:
                self.expirations += 1
                events.append(_tuple_new(FeedbackEvent, (evicted, capacity, True)))
        return events

    def match(self, block: int, access_index: int) -> list[FeedbackEvent]:
        """All unhit predictions of ``block``; marks them hit."""
        # buckets are removed when they empty, so a present bucket is
        # non-empty and popping it up front equals the get-then-pop pair
        bucket = self._by_block.pop(block, None)
        if bucket is None:
            return []
        events = []
        hits = 0
        for entry in bucket:
            if entry.hit:
                continue
            entry.hit = True
            hits += 1
            events.append(
                _tuple_new(
                    FeedbackEvent, (entry, access_index - entry.issue_index, False)
                )
            )
        self.hits += hits
        return events

    # ------------------------------------------------------------------

    def outstanding(self) -> int:
        """Predictions still awaiting a hit."""
        return sum(1 for e in self._queue if not e.hit)

    def outstanding_for(self, block: int) -> bool:
        """True when an unhit prediction of ``block`` is already queued."""
        return bool(self._by_block.get(block))

    def hit_rate(self) -> float:
        """Lifetime fraction of resolved predictions that hit."""
        resolved = self.hits + self.expirations
        return self.hits / resolved if resolved else 0.0

    def reset(self) -> None:
        self._queue.clear()
        self._by_block.clear()
        self.hits = 0
        self.expirations = 0
