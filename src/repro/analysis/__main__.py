"""``python -m repro.analysis`` — direct entry to the static-analysis pass."""

from repro.analysis.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
