"""Subprocess body for the concurrent-writers result-DB test.

Must be a real script file: the warm pool spawns workers with the
``spawn`` start method, which re-imports ``__main__`` by path and
therefore breaks for stdin/``-c`` programs.  Each invocation submits
one single-workload plan into a shared result DB; the test runs two at
once over disjoint shards of the grid and asserts the canonical dump
matches a serial run.
"""

import sys

from repro.sim.sched.db import ResultDB
from repro.sim.sched.plan import GridPlan
from repro.sim.sched.scheduler import SweepScheduler
from repro.workloads.store import TraceStore


def main(argv: list[str]) -> int:
    db_path, store_root, workload, limit = argv
    plan = GridPlan(
        workloads=(workload,),
        prefetchers=("none", "context"),
        limit=int(limit),
    )
    scheduler = SweepScheduler(
        db=ResultDB(db_path), store=TraceStore(store_root), jobs=1
    )
    stats = scheduler.run_plan_sync(plan)
    return 0 if stats.executed + stats.resumed == plan.n_cells else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
