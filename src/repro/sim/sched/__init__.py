"""Sweep scheduler: persistent warm workers over a queryable result DB.

The package splits the high-throughput sweep path into four small
layers, each testable on its own:

* :mod:`repro.sim.sched.plan` — a declarative :class:`GridPlan`
  (workload × context-config × prefetcher axes) enumerated in
  deterministic grid order, content-addressed per cell with the result
  cache's :func:`~repro.sim.cache.cell_key`, and sharded into
  workload-affinity batches;
* :mod:`repro.sim.sched.pool` — the persistent spawn-based worker pool:
  workers stay alive across batches and sweeps, keeping mmap'd trace
  readers, decoded column arrays and the compiled native kernel handle
  resident, so decode/build cost is paid once per worker rather than
  once per cell;
* :mod:`repro.sim.sched.db` — the SQLite result store under
  ``results/``: one row per content-addressed cell over the versioned
  codec, committed per batch, with a canonical logical dump so two DBs
  can be compared bit-for-bit regardless of page layout;
* :mod:`repro.sim.sched.scheduler` — the asyncio submit/drain loop that
  ties them together and implements resume: a restarted sweep diffs its
  plan's keys against the DB and re-enqueues only the remainder.

``repro serve`` (:mod:`repro.serve`) is the user-facing client;
:func:`repro.sim.parallel.parallel_compare` dispatches its store-backed
grids through the same pool, so ``repro sweep``/``figure`` and
``scripts/run_full_experiments.py`` share the warm workers for free.
"""

from repro.sim.sched.db import DEFAULT_DB_PATH, ResultDB, ResultDBError
from repro.sim.sched.plan import GridPlan, PlanCell, shard_by_workload
from repro.sim.sched.pool import BatchShared, WorkerPool, shared_pool, shutdown_pools
from repro.sim.sched.scheduler import SchedulerError, SweepScheduler, SweepStats

__all__ = [
    "BatchShared",
    "DEFAULT_DB_PATH",
    "GridPlan",
    "PlanCell",
    "ResultDB",
    "ResultDBError",
    "SchedulerError",
    "SweepScheduler",
    "SweepStats",
    "WorkerPool",
    "shard_by_workload",
    "shared_pool",
    "shutdown_pools",
]
