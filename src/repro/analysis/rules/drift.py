"""DRIFT: inline-parity pinning for the PR-4/PR-5 fast paths.

The kernel in ``sim/simulator.py`` and the fused prefetcher path in
``core/prefetcher.py`` carry *inlined copies* of canonical component
methods (``CoreModel.issue_time``, ``Reducer.lookup``, ...).  The copies
were proven bit-exact when they landed — but nothing kept them that way:
edit the canonical method and forget the copy (or vice versa) and the
fast and slow paths silently diverge, exactly the class of bug the
golden suites exist to catch, caught only when someone happens to run
them against the right workload.

This rule turns that into a lint error, using the same hash-pinning
trick PERF002 uses for the record layout:

* each canonical symbol is fingerprinted from its AST (``ast.unparse``,
  docstrings stripped — formatting and comments don't count, code does);
* each inlined copy is delimited in source by marker comments::

      # drift: begin <key>
      ...
      # drift: end <key>

  and fingerprinted the same way (several regions may share a key —
  they concatenate in file order);
* both fingerprints are pinned in ``analysis/drift_pins.json``.

**DRIFT001** fires when either side's fingerprint leaves its pin — the
message says which side moved.  After an *intentional, paired* edit,
re-pin with::

    PYTHONPATH=src python scripts/regen_drift_pins.py

which refuses to run unless both sides are presented together, and the
kernel-golden suite re-proves parity.  **DRIFT002** reports broken
infrastructure (missing symbol, marker or pin) so a refactor cannot
quietly drop a pair out of coverage.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
import re
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project, SourceFile

#: the command a DRIFT001 message tells the developer to run
REGEN_CMD = "PYTHONPATH=src python scripts/regen_drift_pins.py"

PINS_PATH = Path(__file__).resolve().parents[1] / "drift_pins.json"

MARKER_RE = re.compile(r"#\s*drift:\s*(begin|end)\s+([A-Za-z0-9_.-]+)")


#: (key, canonical rel, canonical symbol, inlined rel) — the symbol is a
#: function qualname ("Class.meth") or a class name; the inlined side is
#: the file whose ``# drift:`` regions carry the copy.
#:
#: The ``native-context-*`` pairs tie the C port of the RL context loop
#: (the ``SOURCE_CTX_*`` string assignments in ``sim/native/_csrc.py``,
#: each wrapped in a marker region) to its interpreted oracle: editing a
#: canonical method re-fingerprints the Python side, editing the C string
#: re-fingerprints the inlined side (the string literal is part of the
#: unparsed assignment), and DRIFT001 fires unless both move together
#: and are re-pinned after the parity suites pass.  The kernel's MT19937
#: region carries no pair — its canonical is CPython's own ``_random``,
#: and ``tests/sim/test_native_rng.py`` compares against that directly.
DRIFT_PAIRS: tuple[tuple[str, str, str, str], ...] = (
    ("core-issue-time", "cpu/core_model.py", "CoreModel.issue_time", "sim/simulator.py"),
    ("core-complete", "cpu/core_model.py", "CoreModel.complete", "sim/simulator.py"),
    ("classifier-record-demand", "memory/stats.py", "AccessClassifier.record_demand", "sim/simulator.py"),
    ("access-info-fields", "prefetchers/base.py", "AccessInfo", "sim/simulator.py"),
    ("tracker-capture", "core/context.py", "ContextTracker.capture", "core/prefetcher.py"),
    ("reducer-lookup", "core/reducer.py", "Reducer.lookup", "core/prefetcher.py"),
    ("policy-select", "core/bandit.py", "EpsilonGreedyPolicy.select", "core/prefetcher.py"),
    ("native-context-hash", "core/context.py", "context_hash", "sim/native/_csrc.py"),
    ("native-context-state", "core/prefetcher.py", "ContextPrefetcher.__init__", "sim/native/_csrc.py"),
    ("native-context-reward", "core/reward.py", "RewardFunction.__call__", "sim/native/_csrc.py"),
    ("native-context-cst", "core/cst.py", "ContextStatesTable.add_association", "sim/native/_csrc.py"),
    ("native-context-feedback", "core/prefetcher.py", "ContextPrefetcher._apply_feedback", "sim/native/_csrc.py"),
    ("native-context-reducer", "core/reducer.py", "Reducer.adapt", "sim/native/_csrc.py"),
    ("native-context-select", "core/bandit.py", "EpsilonGreedyPolicy.select", "sim/native/_csrc.py"),
    ("native-context-softmax", "core/bandit.py", "SoftmaxPolicy.select", "sim/native/_csrc.py"),
    ("native-context-kernel", "core/prefetcher.py", "ContextPrefetcher.on_access", "sim/native/_csrc.py"),
)


def _strip_docstring(node: ast.AST) -> ast.AST:
    if (
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and node.body
    ):
        first = node.body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            node = copy.deepcopy(node)
            node.body = node.body[1:] or [ast.Pass()]
    return node


def fingerprint_nodes(nodes: list[ast.AST]) -> str:
    """sha256 over the unparsed (comment/format-free) source of ``nodes``.

    ``ast.unparse`` is used rather than ``ast.dump`` because the dump
    format changes between CPython minors (3.12 added ``type_params``),
    and these pins must verify identically on every CI interpreter.
    """
    text = "\n".join(ast.unparse(_strip_docstring(n)) for n in nodes)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def find_symbol(source: SourceFile, symbol: str) -> ast.AST | None:
    """A top-level function/class or ``Class.method`` def node."""
    head, _, rest = symbol.partition(".")
    for stmt in source.tree.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and stmt.name == head
        ):
            if not rest:
                return stmt
            if isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if (
                        isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and sub.name == rest
                    ):
                        return sub
    return None


def marker_regions(text: str, key: str) -> list[tuple[int, int]]:
    """``(begin_line, end_line)`` pairs for ``key``'s marker comments."""
    regions: list[tuple[int, int]] = []
    open_line: int | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = MARKER_RE.search(line)
        if match is None or match.group(2) != key:
            continue
        if match.group(1) == "begin":
            open_line = lineno
        elif open_line is not None:
            regions.append((open_line, lineno))
            open_line = None
    return regions


def region_statements(
    tree: ast.Module, regions: list[tuple[int, int]]
) -> list[ast.AST]:
    """Maximal statements lying fully inside any region, in file order."""
    collected: list[tuple[int, ast.AST]] = []

    def inside(stmt: ast.stmt) -> bool:
        end = getattr(stmt, "end_lineno", stmt.lineno)
        return any(
            begin <= stmt.lineno and end <= stop for begin, stop in regions
        )

    def scan(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if inside(stmt):
                collected.append((stmt.lineno, stmt))
                continue
            for field_name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, field_name, None)
                if block and isinstance(block, list):
                    scan([s for s in block if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", ()):
                scan(handler.body)

    scan(tree.body)
    collected.sort(key=lambda pair: pair[0])
    return [stmt for _, stmt in collected]


def load_pins(path: Path | None = None) -> dict[str, dict[str, str]]:
    pins_path = path or PINS_PATH
    if not pins_path.is_file():
        return {}
    data = json.loads(pins_path.read_text(encoding="utf-8"))
    return {str(k): dict(v) for k, v in data.items()}


def compute_fingerprints(
    project: Project,
    pairs: tuple[tuple[str, str, str, str], ...] = DRIFT_PAIRS,
) -> dict[str, dict[str, str]]:
    """Current ``{key: {canonical, inlined}}`` fingerprints (regen path).

    Raises ``KeyError``/``ValueError`` on missing files, symbols or
    markers — the regen script must fail loudly, never pin a gap.
    """
    out: dict[str, dict[str, str]] = {}
    for key, canon_rel, symbol, inline_rel in pairs:
        canon_src = project.get(canon_rel)
        inline_src = project.get(inline_rel)
        if canon_src is None or inline_src is None:
            raise KeyError(f"{key}: missing file {canon_rel} or {inline_rel}")
        node = find_symbol(canon_src, symbol)
        if node is None:
            raise KeyError(f"{key}: symbol {symbol} not found in {canon_rel}")
        regions = marker_regions(inline_src.text, key)
        if not regions:
            raise ValueError(f"{key}: no '# drift: begin {key}' in {inline_rel}")
        stmts = region_statements(inline_src.tree, regions)
        if not stmts:
            raise ValueError(f"{key}: marker region in {inline_rel} is empty")
        out[key] = {
            "canonical": fingerprint_nodes([node]),
            "inlined": fingerprint_nodes(stmts),
        }
    return out


@register_rule
class InlineDriftRule(Rule):
    """Canonical methods and their inlined kernel copies must move together."""

    rule_id = "DRIFT"
    title = "inline-parity pinning: fast-path copies match their canonicals"

    codes = {
        "DRIFT001": "a pinned canonical/inlined pair changed on one side",
        "DRIFT002": "drift-pin infrastructure broken (missing symbol, "
        "marker or pin entry)",
    }

    def __init__(
        self,
        pairs: tuple[tuple[str, str, str, str], ...] = DRIFT_PAIRS,
        pins: dict[str, dict[str, str]] | None = None,
    ):
        self.pairs = pairs
        self.pins = pins

    def check(self, project: Project) -> Iterator[Finding]:
        pins = self.pins if self.pins is not None else load_pins()
        for key, canon_rel, symbol, inline_rel in self.pairs:
            canon_src = project.get(canon_rel)
            inline_src = project.get(inline_rel)
            if canon_src is None or inline_src is None:
                # files outside this analysis root: the pair does not
                # apply (fixture trees pass their own pairs)
                continue
            node = find_symbol(canon_src, symbol)
            if node is None:
                yield Finding(
                    canon_rel,
                    1,
                    "DRIFT002",
                    f"drift pair {key}: canonical symbol {symbol} not "
                    f"found in {canon_rel}; update DRIFT_PAIRS or restore "
                    "the symbol",
                )
                continue
            regions = marker_regions(inline_src.text, key)
            if not regions:
                yield Finding(
                    inline_rel,
                    1,
                    "DRIFT002",
                    f"drift pair {key}: no '# drift: begin {key}' marker "
                    f"in {inline_rel}; the inlined copy is out of "
                    "coverage",
                )
                continue
            stmts = region_statements(inline_src.tree, regions)
            if not stmts:
                yield Finding(
                    inline_rel,
                    regions[0][0],
                    "DRIFT002",
                    f"drift pair {key}: marker region contains no "
                    "statements",
                )
                continue
            pin = pins.get(key)
            if pin is None:
                yield Finding(
                    canon_rel,
                    getattr(node, "lineno", 1),
                    "DRIFT002",
                    f"drift pair {key} has no pinned fingerprints; run "
                    f"`{REGEN_CMD}`",
                )
                continue
            canon_hash = fingerprint_nodes([node])
            inline_hash = fingerprint_nodes(stmts)
            canon_moved = canon_hash != pin.get("canonical")
            inline_moved = inline_hash != pin.get("inlined")
            if canon_moved and not inline_moved:
                yield Finding(
                    canon_rel,
                    getattr(node, "lineno", 1),
                    "DRIFT001",
                    f"{symbol} changed but its inlined copy in "
                    f"{inline_rel} ({key}) did not; port the edit, "
                    f"re-prove parity, then `{REGEN_CMD}`",
                )
            elif inline_moved and not canon_moved:
                yield Finding(
                    inline_rel,
                    regions[0][0],
                    "DRIFT001",
                    f"inlined copy of {symbol} ({key}) changed but the "
                    f"canonical in {canon_rel} did not; port the edit, "
                    f"re-prove parity, then `{REGEN_CMD}`",
                )
            elif canon_moved and inline_moved:
                yield Finding(
                    canon_rel,
                    getattr(node, "lineno", 1),
                    "DRIFT001",
                    f"both sides of drift pair {key} changed; if the "
                    "edit is intentional and the golden suite passes, "
                    f"re-pin with `{REGEN_CMD}`",
                )
