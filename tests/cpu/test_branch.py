"""Tests for the global branch-history register."""

import pytest

from repro.cpu.branch import BranchHistoryRegister


class TestBranchHistory:
    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            BranchHistoryRegister(bits=0)

    def test_initial_value_zero(self):
        assert BranchHistoryRegister().value == 0

    def test_shift_in_taken(self):
        bhr = BranchHistoryRegister(bits=4)
        bhr.update(True)
        assert bhr.value == 0b1

    def test_most_recent_in_bit_zero(self):
        bhr = BranchHistoryRegister(bits=4)
        bhr.update(True)
        bhr.update(False)
        assert bhr.value == 0b10

    def test_width_masking(self):
        bhr = BranchHistoryRegister(bits=2)
        for _ in range(10):
            bhr.update(True)
        assert bhr.value == 0b11

    def test_update_many_oldest_first(self):
        bhr = BranchHistoryRegister(bits=8)
        bhr.update_many((True, False, True))
        assert bhr.value == 0b101

    def test_update_counter(self):
        bhr = BranchHistoryRegister()
        bhr.update_many([True] * 5)
        assert bhr.updates == 5

    def test_reset(self):
        bhr = BranchHistoryRegister()
        bhr.update(True)
        bhr.reset()
        assert bhr.value == 0
