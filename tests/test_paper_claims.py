"""Direct tests of the paper's central claims at test-tractable scale.

The benchmarks assert figure shapes at larger scale; these are the same
claims distilled into the fastest configurations that still demonstrate
them, so a plain ``pytest tests/`` run already verifies the core story.
"""

import pytest

from repro.sim.runner import compare, run_workload
from repro.workloads.linked_list import ListTraversalProgram


class TestSemanticLocalityClaim:
    """Section 1: irregular codes gain from semantic, not spatial, locality."""

    @pytest.fixture(scope="class")
    def linked_sweep(self):
        return compare(
            [ListTraversalProgram(num_nodes=800, iterations=10)],
            prefetchers=("none", "stride", "ghb-pcdc", "sms", "context"),
        )

    def test_spatio_temporal_prefetchers_fail_on_scattered_list(self, linked_sweep):
        base = linked_sweep.get("list", "none")
        for pf in ("stride", "ghb-pcdc"):
            assert linked_sweep.get("list", pf).speedup_over(base) < 1.1, pf

    def test_context_prefetcher_succeeds_on_scattered_list(self, linked_sweep):
        base = linked_sweep.get("list", "none")
        assert linked_sweep.get("list", "context").speedup_over(base) > 1.5

    def test_context_beats_every_competitor_on_scattered_list(self, linked_sweep):
        base = linked_sweep.get("list", "none")
        context = linked_sweep.get("list", "context").speedup_over(base)
        for pf in ("stride", "ghb-pcdc", "sms"):
            assert context > linked_sweep.get("list", pf).speedup_over(base), pf


class TestGeneralityClaim:
    """Section 7.1: the prefetcher "indeed captures access semantics
    rather than focusing on a specific access pattern" — it must also
    handle strictly regular patterns."""

    def test_context_prefetcher_speeds_up_regular_arrays(self):
        base = run_workload("array", "none", limit=40000)
        ctx = run_workload("array", "context", limit=40000)
        assert ctx.speedup_over(base) > 1.3


class TestLayoutTranscendenceClaim:
    """Section 2: semantic locality is layout-agnostic — the same logical
    structure in a different physical layout remains learnable."""

    def test_sequential_and_shuffled_lists_both_learned(self):
        results = {}
        for placement in ("sequential", "shuffled"):
            program = ListTraversalProgram(
                num_nodes=800, iterations=10, placement=placement
            )
            base = run_workload(program, "none")
            program2 = ListTraversalProgram(
                num_nodes=800, iterations=10, placement=placement
            )
            ctx = run_workload(program2, "context")
            results[placement] = ctx.speedup_over(base)
        assert results["sequential"] > 1.2
        assert results["shuffled"] > 1.2


class TestRLConvergenceClaim:
    """Section 4: the contextual-bandit loop converges — accuracy rises
    and exploration falls as the predictor trains."""

    def test_accuracy_increases_with_training(self):
        short_prog = ListTraversalProgram(num_nodes=400, iterations=2)
        long_prog = ListTraversalProgram(num_nodes=400, iterations=20)
        short = run_workload(short_prog, "context")
        long = run_workload(long_prog, "context")
        assert long.prefetcher_accuracy > short.prefetcher_accuracy

    def test_timeliness_concentrates_in_reward_window(self):
        program = ListTraversalProgram(num_nodes=400, iterations=20)
        result = run_workload(program, "context")
        assert result.hit_depths.fraction_in_window(18, 50) > 0.4
