"""Figure 12 bench: IPC speedups over no prefetching."""

from conftest import run_once

from repro.experiments import fig12_speedup as fig12


def test_fig12_speedups(benchmark, bench_sweep):
    result = run_once(benchmark, fig12.run, "small", bench_sweep)

    # paper shape: context has the best mean speedup, by a wide margin
    # over the best spatio-temporal prefetcher (paper: ~76% more gain)
    assert result.mean_all["context"] == max(result.mean_all.values())
    assert result.gain_vs_best_competitor > 1.2
    # every irregular linked workload must favour context
    for workload in ("list", "graph500-list"):
        row = result.speedups[workload]
        assert row["context"] == max(row.values())
    # and the peak should be substantial (paper: up to 4.3x)
    assert result.context_peak > 1.5
    print()
    print(fig12.render(result))
