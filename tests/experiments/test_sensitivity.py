"""Tests for the parameter-sensitivity experiment."""

import pytest

from repro.experiments import sensitivity


class TestGrid:
    def test_all_knobs_present(self):
        grid = sensitivity.parameter_grid()
        assert set(grid) == {
            "window",
            "cst_links",
            "queue_depth",
            "max_degree",
            "epsilon_max",
        }

    def test_each_knob_has_default_setting(self):
        grid = sensitivity.parameter_grid()
        # the paper default appears in every knob's settings
        assert "paper(18-50)" in grid["window"]
        assert "4" in grid["cst_links"]
        assert "128" in grid["queue_depth"]

    def test_configs_are_valid(self):
        for settings in sensitivity.parameter_grid().values():
            for config in settings.values():
                assert config.cst_entries > 0  # construction validated


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(workloads=("array",))

    def test_grid_fully_populated(self, result):
        for knob, settings in result.grid.items():
            assert settings, knob
            assert all(v > 0 for v in settings.values())

    def test_best_setting_is_argmax(self, result):
        for knob, settings in result.grid.items():
            best = result.best_setting(knob)
            assert settings[best] == max(settings.values())

    def test_render_marks_best(self, result):
        text = sensitivity.render(result)
        assert "best" in text
        assert "Parameter sensitivity" in text
